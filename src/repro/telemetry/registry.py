"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency observability substrate.  Components own a private
:class:`MetricsRegistry` (so per-instance accounting such as the engine's
mask-cache hit counters keeps its seed semantics), and every non-standalone
registry is attached to the single process registry, whose
:meth:`~MetricsRegistry.snapshot` aggregates the whole process:

* live child registries are merged on demand (counters and histograms sum,
  gauges take the child's value);
* a child that is garbage-collected first *folds* its final totals into the
  process registry, so aggregated counter totals are monotone even when the
  instrumented object was short-lived (benchmark kernels, per-target
  tracker databases).

Thread model: counters and histograms take a per-metric lock on update,
so concurrent increments from the serving/load-generation threads never
lose updates (gauges stay lock-free — last-write-wins is their contract).
Registry structure (metric creation, child adoption, snapshots) is
guarded by a per-registry lock.  Fold-on-death is the delicate case: a
``weakref.finalize`` callback can run on *any* thread at *any* allocation
point, including while a metric or registry lock is held lower in the
same stack — so :meth:`MetricsRegistry._fold` takes no locks at all; it
parks the dead child's metrics on a lock-free deque that
:meth:`~MetricsRegistry.snapshot` and :meth:`~MetricsRegistry.reset`
absorb under the registry lock.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "observe_batch",
    "process_registry",
]

#: Default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


class Counter:
    """A monotonically increasing count (hits, bytes, refusals)."""

    __slots__ = ("name", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        """Add *n* (default 1) to the count; exact under concurrency."""
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-write-wins instantaneous value (k achieved, IL1s)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram (cumulative-style upper bounds + overflow).

    ``bounds`` are sorted upper edges; an observation lands in the first
    bucket whose bound is >= the value, or in the implicit ``+inf``
    overflow bucket.  Bounds are fixed at creation so merging histograms
    of the same name is exact.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "exemplar_value", "exemplar_label", "_lock")
    kind = "histogram"

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.exemplar_value = None
        self.exemplar_label = None
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation; exact under concurrency.

        When *exemplar* (a trace id) is given and *value* is the worst
        seen so far, it becomes the histogram's exemplar — the
        worst-offender pointer exported alongside the buckets.
        """
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if exemplar is not None and (
                self.exemplar_value is None or value > self.exemplar_value
            ):
                self.exemplar_value = value
                self.exemplar_label = exemplar

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly summary of the histogram state."""
        labels = [f"le_{b:g}" for b in self.bounds] + ["inf"]
        data = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }
        if self.exemplar_label is not None:
            data["exemplar"] = {
                "trace_id": self.exemplar_label,
                "value": self.exemplar_value,
            }
        return data

    def merge(self, other: "Histogram") -> None:
        """Fold *other* (same bounds) into this histogram."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        with self._lock:
            for i, c in enumerate(other.bucket_counts):
                self.bucket_counts[i] += c
            self.count += other.count
            self.total += other.total
            if other.exemplar_label is not None and (
                self.exemplar_value is None
                or other.exemplar_value > self.exemplar_value
            ):
                self.exemplar_value = other.exemplar_value
                self.exemplar_label = other.exemplar_label

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def observe_batch(
    hists: list,
    values: list,
    exemplar: str | None = None,
    shared_lock: "threading.Lock | None" = None,
) -> None:
    """Record ``values[i]`` into ``hists[i]`` for each value present.

    ``values`` may be shorter than ``hists`` — the pair lists are
    position-aligned and the extra histograms are untouched.  The
    serving runtime's traced hot path lands seven stage observations
    per request; routing them through this helper instead of seven
    :meth:`Histogram.observe` calls skips the per-call method dispatch
    and ``with``-statement overhead, and the parallel-list shape (vs a
    list of pairs) keeps the caller from allocating one GC-tracked
    tuple per observation — both measurable at the serving_traced_qps
    gate's 10% bound.  With *shared_lock* (a family built by
    :meth:`MetricsRegistry.histogram_set`) the whole batch runs under
    one acquire; otherwise each histogram's own lock is taken.  Either
    way every update happens under the lock that guards its histogram,
    so exactness under concurrency is unchanged.
    """
    bl = bisect.bisect_left
    if shared_lock is not None:
        shared_lock.acquire()
        try:
            for i in range(len(values)):
                hist = hists[i]
                value = values[i]
                hist.bucket_counts[bl(hist.bounds, value)] += 1
                hist.count += 1
                hist.total += value
                if exemplar is not None and (
                    hist.exemplar_value is None or value > hist.exemplar_value
                ):
                    hist.exemplar_value = value
                    hist.exemplar_label = exemplar
        finally:
            shared_lock.release()
        return
    for i in range(len(values)):
        hist = hists[i]
        value = values[i]
        lock = hist._lock
        lock.acquire()
        try:
            hist.bucket_counts[bl(hist.bounds, value)] += 1
            hist.count += 1
            hist.total += value
            if exemplar is not None and (
                hist.exemplar_value is None or value > hist.exemplar_value
            ):
                hist.exemplar_value = value
                hist.exemplar_label = exemplar
        finally:
            lock.release()


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    Parameters
    ----------
    owner:
        Diagnostic label of the owning component (``"qdb"``,
        ``"pir.two-server-xor"``); carried into snapshots.
    standalone:
        When False (default), the registry attaches itself to the process
        registry so its metrics appear in process-wide aggregation, and
        its totals are folded into the process registry when it is
        garbage-collected.
    """

    def __init__(self, owner: str = "", standalone: bool = False):
        self.owner = owner
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._children: dict[int, weakref.ref] = {}
        self._finalizers: dict[int, weakref.finalize] = {}
        self._lock = threading.RLock()
        # Dead-child metric dicts parked by _fold; deque appends are
        # atomic, so the finalizer never needs (and must never take) a
        # lock.  Absorbed into _metrics by _absorb_folds.
        self._pending_folds: deque = deque()
        if not standalone:
            process_registry()._adopt(self)

    # -- accessors ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(Counter, name)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(Gauge, name)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the named histogram (bounds fixed at creation)."""
        return self._get_or_create(Histogram, name, bounds)

    def histogram_set(
        self, names: list, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> tuple[list, "threading.Lock | None"]:
        """Get or create a family of histograms sharing one update lock.

        Returns ``(histograms, shared_lock)`` where ``shared_lock`` is a
        single lock guarding *every* returned histogram — the serving
        runtime's stage-histogram sets pass it to :func:`observe_batch`
        so seven per-request observations acquire once instead of seven
        times.  The lock is installed at creation, under the registry
        lock and before the histograms become visible to any other
        thread, so there is no swap window in which a concurrent
        observer could hold a stale lock.  When any name already exists
        with its own lock the family cannot be unified safely and
        ``shared_lock`` is ``None`` (callers fall back to per-histogram
        locking).
        """
        with self._lock:
            fresh = all(name not in self._metrics for name in names)
            shared = threading.Lock() if fresh else None
            out = []
            for name in names:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = Histogram(name, bounds)
                    if shared is not None:
                        metric._lock = shared
                    self._metrics[name] = metric
                elif not isinstance(metric, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}"
                    )
                out.append(metric)
            return out, shared

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- aggregation -------------------------------------------------------

    def _adopt(self, child: "MetricsRegistry") -> None:
        """Track *child* for aggregation; fold its totals when it dies."""
        key = id(child)
        with self._lock:
            self._children[key] = weakref.ref(child)
            # The finalize callback holds the child's metrics dict (not
            # the registry itself), so the final totals survive until
            # folded.
            self._finalizers[key] = weakref.finalize(
                child, self._fold, key, child._metrics
            )

    def _fold(self, key: int, metrics: dict) -> None:
        """Park a dead child's final metric values for later absorption.

        Runs from ``weakref.finalize`` — i.e. potentially mid-allocation
        on an arbitrary thread, possibly while this registry's or a
        metric's lock is already held further down the same call stack.
        Taking any lock here can deadlock, so this only performs an
        atomic deque append; the merge happens in :meth:`_absorb_folds`.
        """
        self._pending_folds.append((key, metrics))

    def _absorb_folds(self) -> None:
        """Merge parked dead-child totals.  Caller holds ``_lock``.

        Entries are pruned by weakref *deadness*, never by the parked
        key: ``id()`` values recycle, so a new live child can share a
        dead child's key — evicting by key would silently detach the
        live child from aggregation.
        """
        absorbed = False
        while True:
            try:
                _key, metrics = self._pending_folds.popleft()
            except IndexError:
                break
            self._merge_into_self(metrics)
            absorbed = True
        if absorbed:
            dead = [k for k, ref in self._children.items() if ref() is None]
            for key in dead:
                self._children.pop(key, None)
                finalizer = self._finalizers.pop(key, None)
                if finalizer is not None:
                    finalizer.detach()

    def _merge_into_self(self, metrics: dict) -> None:
        for name, metric in list(metrics.items()):
            if metric.kind == "counter":
                self.counter(name).inc(metric.value)
            elif metric.kind == "gauge":
                self.gauge(name).set(metric.value)
            else:
                self.histogram(name, metric.bounds).merge(metric)

    def _live_children(self) -> list["MetricsRegistry"]:
        return [c for ref in self._children.values() if (c := ref()) is not None]

    def snapshot(self, include_children: bool = True) -> dict:
        """Aggregated point-in-time view: counters, gauges, histograms.

        Counter and histogram values sum across this registry and (by
        default) every live attached child; gauges take the most recently
        visited child's value.  Keys are sorted for deterministic output.
        """
        merged = MetricsRegistry(owner=self.owner, standalone=True)
        with self._lock:
            self._absorb_folds()
            merged._merge_into_self(self._metrics)
            children = self._live_children() if include_children else []
        for child in children:
            with child._lock:
                child._absorb_folds()
                merged._merge_into_self(child._metrics)
        out: dict = {"owner": self.owner, "counters": {}, "gauges": {},
                     "histograms": {}}
        for name in sorted(merged._metrics):
            metric = merged._metrics[name]
            if metric.kind == "counter":
                out["counters"][name] = metric.value
            elif metric.kind == "gauge":
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.as_dict()
        return out

    def reset(self) -> None:
        """Drop all metrics and detach children (test isolation)."""
        with self._lock:
            self._pending_folds.clear()
            for finalizer in self._finalizers.values():
                finalizer.detach()
            self._finalizers.clear()
            self._children.clear()
            self._metrics.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(owner={self.owner!r}, "
            f"metrics={len(self._metrics)}, children={len(self._children)})"
        )


_PROCESS: MetricsRegistry | None = None


def process_registry() -> MetricsRegistry:
    """The single process-wide registry all component registries attach to."""
    global _PROCESS
    if _PROCESS is None:
        _PROCESS = MetricsRegistry(owner="process", standalone=True)
    return _PROCESS
