"""The instrumentation facade: a strict no-op unless telemetry is enabled.

Hot paths call :func:`enabled` / :func:`span` / :func:`histogram`
unconditionally.  When telemetry is off (the default) these return
module-level singletons — no span objects, no dictionaries, no registry
writes are allocated, so instrumented code is indistinguishable from
uninstrumented code (the property the benchmark gates enforce).

Component-owned *always-on* counters (mask-cache hits, PIR byte traffic)
do not go through this facade; they live in per-instance
:class:`~repro.telemetry.registry.MetricsRegistry` objects because they
replace accounting the seed already did unconditionally.  This facade
gates only the *additional* observability work: spans, trace sinks,
process-level gauges and latency histograms.

Typical session::

    from repro.telemetry import instrument as tele

    tracer = tele.enable(jsonl_path="trace.jsonl")
    ...  # run the instrumented workload
    tele.disable()
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from .registry import DEFAULT_BUCKETS, process_registry
from .tracing import (
    TRACE_CONTEXT,
    JsonlSink,
    Span,
    Tracer,
    _SCALAR_TYPES,
    _scalar,
)

__all__ = [
    "NOOP_METRIC",
    "NOOP_SPAN",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "reset_metrics",
    "session",
    "snapshot",
    "span",
    "tracer",
]


class _NoopSpan:
    """The disabled-path span: a shared, stateless, do-nothing singleton."""

    __slots__ = ()
    name = "noop"
    duration = 0.0
    attrs: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        """Discard the attribute."""


class _NoopMetric:
    """The disabled-path metric: accepts writes, records nothing."""

    __slots__ = ()
    value = 0
    count = 0
    mean = 0.0

    def inc(self, n=1) -> None:
        """Discard the increment."""

    def set(self, value) -> None:
        """Discard the value."""

    def observe(self, value, exemplar=None) -> None:
        """Discard the observation."""


#: Shared singletons returned whenever telemetry is disabled; identity-
#: tested by the no-allocation regression tests.
NOOP_SPAN = _NoopSpan()
NOOP_METRIC = _NoopMetric()

_ENABLED = False
_TRACER: Tracer | None = None
_SINK: JsonlSink | None = None


def enabled() -> bool:
    """True when a telemetry session is active."""
    return _ENABLED


def enable(
    jsonl_path: str | Path | None = None, buffer_size: int = 4096
) -> Tracer:
    """Start a telemetry session; returns the live tracer.

    Re-enabling replaces the current tracer (the previous sink is closed).
    """
    global _ENABLED, _TRACER, _SINK
    if _SINK is not None:
        _SINK.close()
    _SINK = JsonlSink(jsonl_path) if jsonl_path is not None else None
    _TRACER = Tracer(buffer_size=buffer_size, sink=_SINK)
    _ENABLED = True
    return _TRACER


def disable() -> None:
    """End the telemetry session; spans become no-ops again.

    The session's span totals are folded into the process registry
    (``telemetry.spans_started`` / ``telemetry.spans_dropped``), so a
    metrics snapshot records whether any tracing happened at all — the
    disabled-fast-path tests assert these stay absent.
    """
    global _ENABLED, _TRACER, _SINK
    if _TRACER is not None and _TRACER.spans_started:
        registry = process_registry()
        registry.counter("telemetry.spans_started").inc(_TRACER.spans_started)
        registry.counter("telemetry.spans_dropped").inc(_TRACER.spans_dropped)
    _ENABLED = False
    _TRACER = None
    if _SINK is not None:
        _SINK.close()
        _SINK = None


def tracer() -> Tracer | None:
    """The active tracer, or None when disabled."""
    return _TRACER


def span(name: str, **attrs):
    """A traced region when enabled; the shared no-op span otherwise.

    Constructs the :class:`~repro.telemetry.tracing.Span` directly from
    the ``**attrs`` dict this call already owns — routing through
    :meth:`Tracer.span` would repack the keyword arguments into a second
    dict on every hot-path span.
    """
    if not _ENABLED:
        return NOOP_SPAN
    for key, value in attrs.items():
        if not isinstance(value, _SCALAR_TYPES):
            attrs[key] = _scalar(value)
    # Request-trace propagation: while a serving worker has a trace id
    # active on this thread, stamp it onto every span opened underneath
    # so the per-subsystem spans link into one causal tree.
    tid = getattr(TRACE_CONTEXT, "tid", None)
    if tid is not None and "trace_id" not in attrs:
        attrs["trace_id"] = tid
    return Span(_TRACER, name, attrs)


def counter(name: str):
    """A process-registry counter when enabled; the no-op metric otherwise."""
    if not _ENABLED:
        return NOOP_METRIC
    return process_registry().counter(name)


def gauge(name: str):
    """A process-registry gauge when enabled; the no-op metric otherwise."""
    if not _ENABLED:
        return NOOP_METRIC
    return process_registry().gauge(name)


def histogram(name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
    """A process-registry histogram when enabled; no-op metric otherwise."""
    if not _ENABLED:
        return NOOP_METRIC
    return process_registry().histogram(name, bounds)


def snapshot() -> dict:
    """Aggregated process-wide metrics snapshot (works even when disabled,
    so always-on component counters remain inspectable)."""
    return process_registry().snapshot()


def reset_metrics() -> None:
    """Clear the process registry (test isolation)."""
    process_registry().reset()


@contextmanager
def session(jsonl_path: str | Path | None = None, buffer_size: int = 4096):
    """Enable telemetry for the duration of a ``with`` block."""
    active_tracer = enable(jsonl_path, buffer_size=buffer_size)
    try:
        yield active_tracer
    finally:
        disable()
