"""Lightweight structured tracing: nested spans, bounded buffer, JSONL sink.

A :class:`Span` is a named, attributed, monotonic-clock-timed region of
work.  Spans nest through the tracer's explicit stack (the library is
single-threaded), so a batched engine call produces one parent span with
per-query children without any context threading.

Finished spans are JSON-scalar dictionaries with a frozen schema
(:data:`SPAN_FIELDS`); they land in a bounded in-memory ring buffer and,
when a sink is configured, one JSON object per line in a ``.jsonl`` file.
:func:`validate_record` is the single source of truth for the wire format
— the report CLI and the ``make telemetry-smoke`` schema gate both use it.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

__all__ = [
    "JsonlSink",
    "Span",
    "SpanSchemaError",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "validate_record",
]

#: Version stamped into each trace's meta line; bump on schema changes.
TRACE_SCHEMA_VERSION = 1

#: Required span-record fields and their allowed types.
SPAN_FIELDS: dict[str, tuple[type, ...]] = {
    "type": (str,),
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "name": (str,),
    "depth": (int,),
    "start": (int, float),
    "duration": (int, float),
    "attrs": (dict,),
}

_SCALAR_TYPES = (str, int, float, bool, type(None))


class SpanSchemaError(ValueError):
    """A trace record does not conform to the span schema."""


def _scalar(value):
    """Coerce an attribute value to a JSON scalar (repr fallback)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    try:
        import numpy as np
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
    except ImportError:  # pragma: no cover - numpy is always present here
        pass
    return repr(value)


def validate_record(record: object) -> None:
    """Raise :class:`SpanSchemaError` unless *record* is a valid trace line.

    Accepts the two record types a trace file may contain: one ``meta``
    header line and any number of ``span`` lines.
    """
    if not isinstance(record, dict):
        raise SpanSchemaError(f"trace record must be an object, got {record!r}")
    kind = record.get("type")
    if kind == "meta":
        if not isinstance(record.get("schema"), int):
            raise SpanSchemaError("meta record must carry an integer 'schema'")
        return
    if kind != "span":
        raise SpanSchemaError(f"unknown trace record type {kind!r}")
    for field, types in SPAN_FIELDS.items():
        if field not in record:
            raise SpanSchemaError(f"span record missing field {field!r}")
        value = record[field]
        if not isinstance(value, types) or (
            field in ("span_id", "depth") and isinstance(value, bool)
        ):
            raise SpanSchemaError(
                f"span field {field!r} has invalid type "
                f"{type(value).__name__}"
            )
    if record["span_id"] < 1:
        raise SpanSchemaError("span_id must be >= 1")
    if record["duration"] < 0 or record["start"] < 0:
        raise SpanSchemaError("span timings must be non-negative")
    if record["depth"] < 0:
        raise SpanSchemaError("span depth must be >= 0")
    for key, value in record["attrs"].items():
        if not isinstance(key, str):
            raise SpanSchemaError(f"attr key {key!r} is not a string")
        if not isinstance(value, _SCALAR_TYPES):
            raise SpanSchemaError(
                f"attr {key!r} has non-scalar value {value!r}"
            )


class Span:
    """One traced region; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "depth",
        "start", "duration", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self.start = 0.0
        self.duration = 0.0

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = _scalar(value)

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._close(self)
        return False

    def to_record(self) -> dict:
        """The finished span as a schema-conformant dictionary."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class JsonlSink:
    """Write trace records to a file, one JSON object per line."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.write({"type": "meta", "schema": TRACE_SCHEMA_VERSION,
                    "clock": "perf_counter_relative"})

    def write(self, record: dict) -> None:
        """Append one record."""
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        """Flush and close the file."""
        if not self._fh.closed:
            self._fh.close()


class Tracer:
    """Produces nested spans; keeps a bounded buffer of finished records.

    Parameters
    ----------
    buffer_size:
        Maximum finished span records held in memory (oldest dropped
        first; drops are counted in :attr:`spans_dropped`).
    sink:
        Optional :class:`JsonlSink` receiving every finished record.
    """

    def __init__(self, buffer_size: int = 4096, sink: JsonlSink | None = None):
        self.finished: deque[dict] = deque(maxlen=buffer_size)
        self.sink = sink
        self.spans_started = 0
        self.spans_dropped = 0
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs) -> Span:
        """A new span context manager; attrs are coerced to JSON scalars."""
        return Span(self, name, {k: _scalar(v) for k, v in attrs.items()})

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.depth = len(self._stack)
        self._stack.append(span)
        self.spans_started += 1
        span.start = time.perf_counter() - self._epoch

    def _close(self, span: Span) -> None:
        span.duration = time.perf_counter() - self._epoch - span.start
        # Tolerate exception-driven unwinding: pop through any abandoned
        # children so the stack never corrupts subsequent nesting.
        while self._stack:
            if self._stack.pop() is span:
                break
        if len(self.finished) == self.finished.maxlen:
            self.spans_dropped += 1
        record = span.to_record()
        self.finished.append(record)
        if self.sink is not None:
            self.sink.write(record)
