"""Lightweight structured tracing: nested spans, bounded buffer, JSONL sink.

A :class:`Span` is a named, attributed, monotonic-clock-timed region of
work.  Spans nest through a *per-thread* stack (``threading.local``), so
a batched engine call produces one parent span with per-query children
without any context threading, and concurrent sessions on different
threads nest independently without seeing each other's parents.

Finished spans are JSON-scalar dictionaries with a frozen schema
(:data:`SPAN_FIELDS`); they land in a bounded in-memory ring buffer and,
when a sink is configured, one JSON object per line in a ``.jsonl`` file.
:func:`validate_record` is the single source of truth for the wire format
— the report CLI and the ``make telemetry-smoke`` schema gate both use it.

Thread model: span *open* is fully lock-free (ids come from an
``itertools.count`` whose ``next()`` is atomic under the GIL; the open
stack is per-thread).  Span *close* with no sink and no subscribers —
the buffered-only configuration the enabled-overhead benchmark gate
times — parks the span with a single atomic ``deque.append`` and takes
no lock either.  Once a sink or subscriber is attached, close serializes
the whole publication step (ring buffer, sink write, subscriber
dispatch) under one reentrant lock, so every consumer observes the
identical record order — the property that makes a concurrently captured
trace replay to the same observatory alert set as the live run (see
:mod:`repro.telemetry.observatory`).
"""

from __future__ import annotations

import copy
import itertools
import json
import threading
import time
from collections import deque
from pathlib import Path

__all__ = [
    "JsonlSink",
    "Span",
    "SpanSchemaError",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "validate_record",
]

#: Version stamped into each trace's meta line; bump on schema changes.
TRACE_SCHEMA_VERSION = 1

#: Required span-record fields and their allowed types.
SPAN_FIELDS: dict[str, tuple[type, ...]] = {
    "type": (str,),
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "name": (str,),
    "depth": (int,),
    "start": (int, float),
    "duration": (int, float),
    "attrs": (dict,),
}

_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Thread-local request-trace context (see telemetry.requesttrace).
#: ``tid`` holds the active trace id — the instrument facade stamps it
#: onto every span the thread opens; ``fifo`` holds per-batch trace ids
#: the engine pops one-per-query.  Lives here (not in requesttrace) so
#: the facade can read it without a circular import.
TRACE_CONTEXT = threading.local()


class SpanSchemaError(ValueError):
    """A trace record does not conform to the span schema."""


def _scalar(value):
    """Coerce an attribute value to a JSON scalar (repr fallback)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    try:
        import numpy as np
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
    except ImportError:  # pragma: no cover - numpy is always present here
        pass
    return repr(value)


def validate_record(record: object) -> None:
    """Raise :class:`SpanSchemaError` unless *record* is a valid trace line.

    Accepts the two record types a trace file may contain: one ``meta``
    header line and any number of ``span`` lines.
    """
    if not isinstance(record, dict):
        raise SpanSchemaError(f"trace record must be an object, got {record!r}")
    kind = record.get("type")
    if kind == "meta":
        if not isinstance(record.get("schema"), int):
            raise SpanSchemaError("meta record must carry an integer 'schema'")
        return
    if kind != "span":
        raise SpanSchemaError(f"unknown trace record type {kind!r}")
    for field, types in SPAN_FIELDS.items():
        if field not in record:
            raise SpanSchemaError(f"span record missing field {field!r}")
        value = record[field]
        if not isinstance(value, types) or (
            field in ("span_id", "depth") and isinstance(value, bool)
        ):
            raise SpanSchemaError(
                f"span field {field!r} has invalid type "
                f"{type(value).__name__}"
            )
    if record["span_id"] < 1:
        raise SpanSchemaError("span_id must be >= 1")
    if record["duration"] < 0 or record["start"] < 0:
        raise SpanSchemaError("span timings must be non-negative")
    if record["depth"] < 0:
        raise SpanSchemaError("span depth must be >= 0")
    for key, value in record["attrs"].items():
        if not isinstance(key, str):
            raise SpanSchemaError(f"attr key {key!r} is not a string")
        if not isinstance(value, _SCALAR_TYPES):
            raise SpanSchemaError(
                f"attr {key!r} has non-scalar value {value!r}"
            )


class Span:
    """One traced region; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "depth",
        "start", "duration", "_tracer", "_attrs_fn",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._attrs_fn = None
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self.start = 0.0
        self.duration = 0.0

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        if self._attrs_fn is not None:
            self._materialize_attrs()
        self.attrs[key] = _scalar(value)

    def defer_attrs(self, builder) -> None:
        """Provide the span's attributes lazily, via *builder()*.

        ``builder`` must return a dict of JSON scalars; it runs once, at
        materialization time (record buffer read, sink write, subscriber
        delivery, or a later :meth:`set`).  Attributes written eagerly
        *after* this call — e.g. the automatic ``error`` key — overlay
        the built dict.  Hot paths use this so that a buffered-only
        telemetry session never pays for attribute rendering at all.
        """
        self._attrs_fn = builder

    def _materialize_attrs(self) -> None:
        built = self._attrs_fn()
        self._attrs_fn = None
        if self.attrs:
            built.update(self.attrs)
        self.attrs = built

    # __enter__/__exit__ inline Tracer._open/_close: a span open/close
    # pair sits on the per-query hot path of every instrumented engine,
    # and the enabled-overhead benchmark gate (<10% on qdb_ask_batch)
    # leaves no room for two extra frames per span.

    def __enter__(self) -> "Span":
        tracer = self._tracer
        # next() on an itertools.count is a single C call — atomic under
        # the GIL — so span open allocates its id without taking a lock.
        self.span_id = next(tracer._ids)
        stack = tracer._stack  # per-thread: no lock needed past this point
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter() - tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        tracer = self._tracer
        self.duration = time.perf_counter() - tracer._epoch - self.start
        # Tolerate exception-driven unwinding: pop through any abandoned
        # children so the stack never corrupts subsequent nesting.
        stack = tracer._stack
        while stack:
            if stack.pop() is self:
                break
        # Buffered-only fast path (the common enabled configuration, and
        # what the telemetry-overhead gate times): no consumer needs the
        # record *now*, so park the finished span — without a lock —
        # and let Tracer.finished materialize dictionaries on read.
        # deque.append is atomic under the GIL, and _drain_locked
        # consumes via popleft rather than swapping the buffer out, so a
        # concurrent append never lands on a discarded deque.  A
        # subscriber attached between this check and the append sees the
        # record at the next drain (add_subscriber drains first), which
        # is why services attach before driving load.
        if tracer.sink is None and not tracer._subscribers:
            pending = tracer._pending
            pending.append(self)
            if len(pending) >= tracer._maxlen:
                with tracer._emit_lock:
                    tracer._drain_locked()
            return False
        # Publication — buffer append, sink write, subscriber dispatch —
        # is one critical section: every consumer sees the same total
        # record order, which is what makes a concurrent capture replay
        # deterministically.  The lock is reentrant so a subscriber that
        # opens spans of its own (observatory alert emission) re-enters
        # safely from dispatch context.
        with tracer._emit_lock:
            tracer._drain_locked()  # keep close order across the lazy era
            record = self.to_record()
            finished = tracer._finished
            if len(finished) == tracer._maxlen:
                tracer.spans_dropped += 1
            finished.append(record)
            if tracer.sink is not None:
                tracer.sink.write(record)
            for callback in tuple(tracer._subscribers):
                callback(record)
        return False

    def to_record(self) -> dict:
        """The finished span as a schema-conformant dictionary."""
        if self._attrs_fn is not None:
            self._materialize_attrs()
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class JsonlSink:
    """Write trace records to a file, one JSON object per line."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "w", encoding="utf-8")
        self.write({"type": "meta", "schema": TRACE_SCHEMA_VERSION,
                    "clock": "perf_counter_relative"})

    def write(self, record: dict) -> None:
        """Append one record (whole lines even under concurrent writers)."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            self._fh.write(line)

    def close(self) -> None:
        """Flush and close the file."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class Tracer:
    """Produces nested spans; keeps a bounded buffer of finished records.

    Parameters
    ----------
    buffer_size:
        Maximum finished span records held in memory (oldest dropped
        first; drops are counted in :attr:`spans_dropped`).
    sink:
        Optional :class:`JsonlSink` receiving every finished record.
    """

    def __init__(self, buffer_size: int = 4096, sink: JsonlSink | None = None):
        self._finished: deque[dict] = deque(maxlen=buffer_size)
        self._maxlen = buffer_size
        self._pending: deque[Span] = deque()
        self.sink = sink
        self.spans_dropped = 0
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self._subscribers: list = []
        # _emit_lock guards publication (buffer/pending/sink/subscriber
        # dispatch, on span close) whenever a sink or subscriber is
        # attached.  Span open takes no lock at all: ids come from
        # next() on an itertools.count, atomic under the GIL, and the
        # buffered-only close path parks spans with an atomic
        # deque.append.
        self._emit_lock = threading.RLock()

    @property
    def spans_started(self) -> int:
        """How many spans have been opened on this tracer.

        Derived from the id counter rather than maintained as a second
        mutation on span open: ``copy.copy`` snapshots the count's
        current state atomically, and ids are allocated contiguously
        from 1, so the next unallocated id minus one is the exact number
        started.
        """
        return next(copy.copy(self._ids)) - 1

    @property
    def _stack(self) -> list:
        """This thread's open-span stack (created lazily per thread)."""
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    @property
    def finished(self) -> deque:
        """The bounded buffer of finished span records (oldest first).

        Spans closed while no sink or subscriber was attached are parked
        as objects and only rendered to schema-conformant dictionaries
        here, on first read — the buffered hot path stays dict-free.
        Under concurrent writers, take ``list(tracer.finished)`` for a
        stable snapshot.
        """
        with self._emit_lock:
            self._drain_locked()
            return self._finished

    def _drain_locked(self) -> None:
        """Materialize parked spans, in order.  Caller holds _emit_lock.

        Consumes via ``popleft`` rather than swapping the deque out:
        lock-free producers in ``Span.__exit__`` hold a reference to
        ``_pending`` and must never append to a discarded buffer.
        """
        pending = self._pending
        if not pending:
            return
        finished = self._finished
        maxlen = self._maxlen
        while pending:
            item = pending.popleft()
            if len(finished) == maxlen:
                self.spans_dropped += 1
            # emit_event parks ready record dicts; Span.__exit__ and
            # emit_deferred park objects that render lazily here.
            finished.append(item if type(item) is dict else item.to_record())

    def add_subscriber(self, callback) -> None:
        """Register *callback(record)* to receive every finished span.

        Subscribers are the live feed behind the streaming observatory:
        they see each schema-conformant record exactly once, in close
        order (children before parents), synchronously from span exit
        and serialized under the tracer's emit lock — two spans closing
        on different threads never dispatch concurrently, and every
        subscriber observes the same total order.  A subscriber that
        opens spans of its own (alert emission) is safe: the emit lock
        is reentrant and the closed span is already off its stack.
        """
        with self._emit_lock:
            if callback not in self._subscribers:
                self._drain_locked()  # lazy-era records stay ordered first
                self._subscribers.append(callback)

    def remove_subscriber(self, callback) -> None:
        """Unregister a subscriber (no-op when absent)."""
        with self._emit_lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def emit_event(self, name: str, attrs: dict) -> None:
        """Emit one flat, zero-duration event span.

        The serving runtime's ``serving.request`` records use this: all
        information rides in the attrs (which must already be JSON
        scalars — the caller owns the dict), there is no region to
        time, and the record must cost the emitting worker as little as
        a regular buffered span close.  The record is flat by
        construction — ``parent_id`` None, depth 0 — regardless of what
        spans the calling thread has open: the causal linkage is the
        ``trace_id`` attr, not span nesting.

        The schema-conformant record dict is built here directly rather
        than via a throwaway :class:`Span` — an event has no region to
        close, so routing through Span would alloc an object only to
        rebuild this same dict in ``to_record`` at drain time.
        ``_drain_locked`` passes ready dicts through untouched.
        """
        record = {
            "type": "span",
            "span_id": next(self._ids),
            "parent_id": None,
            "name": name,
            "depth": 0,
            "start": time.perf_counter() - self._epoch,
            "duration": 0.0,
            "attrs": attrs,
        }
        if self.sink is None and not self._subscribers:
            pending = self._pending
            pending.append(record)
            if len(pending) >= self._maxlen:
                with self._emit_lock:
                    self._drain_locked()
            return
        with self._emit_lock:
            self._drain_locked()
            if len(self._finished) == self._maxlen:
                self.spans_dropped += 1
            self._finished.append(record)
            if self.sink is not None:
                self.sink.write(record)
            for callback in tuple(self._subscribers):
                callback(record)

    def emit_deferred(self, item) -> None:
        """Publish a caller-built span object that renders lazily.

        The serving runtime's ``serving.request`` records use this: the
        request path already owns a finished trace object, so a
        buffered-only session parks that object as-is — zero additional
        allocations on the emitting worker — and only a consumer that
        reads the buffer pays for ``item.to_record()``.  With a sink or
        subscriber attached the record renders immediately under the
        emit lock, exactly like a span close, so live consumers and
        capture files are unaffected by the deferral.

        The tracer stamps ``item.span_id`` from its id counter (keeping
        :attr:`spans_started` exact) and ``item._epoch`` (so the
        deferred render places ``start`` on this tracer's clock).  The
        caller must not mutate *item* after handing it over.
        """
        item.span_id = next(self._ids)
        item._epoch = self._epoch
        if self.sink is None and not self._subscribers:
            pending = self._pending
            pending.append(item)
            if len(pending) >= self._maxlen:
                with self._emit_lock:
                    self._drain_locked()
            return
        with self._emit_lock:
            self._drain_locked()
            record = item.to_record()
            if len(self._finished) == self._maxlen:
                self.spans_dropped += 1
            self._finished.append(record)
            if self.sink is not None:
                self.sink.write(record)
            for callback in tuple(self._subscribers):
                callback(record)

    def span(self, name: str, **attrs) -> Span:
        """A new span context manager; attrs are coerced to JSON scalars.

        The ``**attrs`` dict is owned by this call, so coercion mutates
        it in place and touches only non-scalar values — on the hot path
        (every attribute already a str/int/float/bool/None) this costs
        six isinstance checks, not a dict rebuild.
        """
        for key, value in attrs.items():
            if not isinstance(value, _SCALAR_TYPES):
                attrs[key] = _scalar(value)
        return Span(self, name, attrs)

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

