"""The privacy-meter dashboard.

Renders the paper's three-dimension privacy scores (respondent / owner /
user, with their Table 2 grades) next to the operational metrics the
instrumented run produced — so "k-anonymity scored medium-high" sits
beside "312 records generalized, 14 queries refused, 1.2 MB of PIR
traffic", the measurement plumbing an information-theoretic view of
privacy requires.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["meter_bar", "render_dashboard", "render_metrics"]

_BAR_WIDTH = 24


def meter_bar(score: float, width: int = _BAR_WIDTH) -> str:
    """An ASCII meter for a [0, 1] score: ``[#########---]``."""
    score = min(1.0, max(0.0, float(score)))
    filled = round(score * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _histogram_row(name: str, data: dict) -> str:
    return (
        f"  {name:<34s} count={data['count']:<8d} "
        f"mean={data['mean'] * 1e3:.3f} ms"
    )


def render_metrics(snapshot: dict) -> str:
    """The operational half: counters, gauges, histogram summaries."""
    lines = ["operational metrics"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if not (counters or gauges or histograms):
        return "operational metrics\n  (none recorded)"
    for name, value in counters.items():
        lines.append(f"  {name:<34s} {value:>14,}")
    for name, value in gauges.items():
        lines.append(f"  {name:<34s} {value:>14.4g}")
    for name, data in histograms.items():
        lines.append(_histogram_row(name, data))
    return "\n".join(lines)


def render_dashboard(
    assessments: Sequence,
    snapshot: dict | None = None,
    title: str = "privacy meters",
) -> str:
    """Three-dimension score meters plus the metrics that produced them.

    ``assessments`` are
    :class:`~repro.core.assessment.MaskingAssessment` objects (anything
    with ``method_name``, ``scores``, ``grades`` and ``utility`` duck-types).
    """
    from ..core.dimensions import PrivacyDimension

    dims = (
        ("respondent", PrivacyDimension.RESPONDENT),
        ("owner", PrivacyDimension.OWNER),
        ("user", PrivacyDimension.USER),
    )
    lines = [title, "=" * len(title)]
    for assessment in assessments:
        lines.append("")
        lines.append(f"{assessment.method_name}")
        for label, dim in dims:
            score = assessment.scores[dim]
            grade = assessment.grades[dim]
            lines.append(
                f"  {label:<11s} {meter_bar(score)} {score:5.2f}  {grade}"
            )
        utility = getattr(assessment, "utility", None)
        if utility is not None:
            lines.append(f"  {'IL1s loss':<11s} {utility.il1s:.3f}")
    lines.append("")
    if snapshot is not None:
        lines.append(render_metrics(snapshot))
    return "\n".join(lines)
