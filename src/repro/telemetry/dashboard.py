"""The privacy-meter dashboard.

Renders the paper's three-dimension privacy scores (respondent / owner /
user, with their Table 2 grades) next to the operational metrics the
instrumented run produced — so "k-anonymity scored medium-high" sits
beside "312 records generalized, 14 queries refused, 1.2 MB of PIR
traffic", the measurement plumbing an information-theoretic view of
privacy requires.
"""

from __future__ import annotations

import math
import re
from collections.abc import Sequence

__all__ = ["format_quantity", "meter_bar", "render_dashboard",
           "render_metrics"]

_BAR_WIDTH = 24

#: (scale, suffix) ladders per unit family, largest scale first.
_UNIT_LADDERS = {
    "seconds": ((1.0, "s"), (1e-3, "ms"), (1e-6, "us")),
    "bytes": ((1024.0 ** 2, "MiB"), (1024.0, "KiB"), (1.0, "B")),
}


def meter_bar(score: float, width: int = _BAR_WIDTH) -> str:
    """An ASCII meter for a [0, 1] score: ``[#########---]``."""
    score = min(1.0, max(0.0, float(score)))
    filled = round(score * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def format_quantity(value: float, metric_name: str = "") -> str:
    """Render a metric value with a unit inferred from the metric's name.

    The metric-name suffix selects the unit family — ``*_seconds`` scales
    through s/ms/us, ``*_bytes`` through MiB/KiB/B — so the dashboard
    never hard-codes one unit for every histogram.  Unknown families
    render as plain numbers.

    >>> format_quantity(0.0042, "qdb.query_seconds")
    '4.2 ms'
    >>> format_quantity(3_500_000, "smc.payload_bytes")
    '3.34 MiB'
    >>> format_quantity(7.0, "pir.retrievals")
    '7'
    """
    value = float(value)
    if math.isinf(value):
        return "inf"
    ladder = next(
        (steps for family, steps in _UNIT_LADDERS.items()
         if metric_name.endswith(family)),
        None,
    )
    if ladder is None:
        return f"{value:g}"
    if value == 0.0:
        return f"0 {ladder[-1][1]}"
    for scale, suffix in ladder:
        if value >= scale:
            return f"{value / scale:.3g} {suffix}"
    scale, suffix = ladder[-1]
    return f"{value / scale:.3g} {suffix}"


def _histogram_row(name: str, data: dict) -> str:
    """One summary line: count plus bucket-derived p50/p95/max bounds.

    The quantiles come from the fixed bucket counts, so they are upper
    bounds (the bucket edge containing the quantile observation) — the
    honest direction for latency SLOs.  ``max`` is the q=1.0 bound: the
    edge of the highest non-empty bucket, or ``inf`` if the overflow
    bucket is occupied.
    """
    from .observatory.stream import quantile_from_buckets

    buckets = data["buckets"]
    bounds = [float(label[len("le_"):]) for label in buckets
              if label != "inf"]
    counts = list(buckets.values())
    quantiles = " ".join(
        f"{label}<={format_quantity(quantile_from_buckets(bounds, counts, q), name)}"
        for label, q in (("p50", 0.5), ("p95", 0.95), ("max", 1.0))
    )
    return f"  {name:<34s} count={data['count']:<8d} {quantiles}"


def render_metrics(snapshot: dict) -> str:
    """The operational half: counters, gauges, histogram summaries.

    Counter pairs named ``<base>_hits`` / ``<base>_misses`` (the mask
    cache and the query-plan cache) get a derived ``<base>_hit_rate``
    row right after the pair, so cache efficiency reads off the
    dashboard directly instead of needing mental division.
    """
    lines = ["operational metrics"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if not (counters or gauges or histograms):
        return "operational metrics\n  (none recorded)"
    for name, value in counters.items():
        lines.append(f"  {name:<34s} {value:>14,}")
        if name.endswith("_misses"):
            base = name[: -len("_misses")]
            hits = counters.get(f"{base}_hits")
            if hits is not None and hits + value > 0:
                rate = hits / (hits + value)
                lines.append(f"  {base + '_hit_rate':<34s} {rate:>14.1%}")
    for name, value in gauges.items():
        lines.append(f"  {name:<34s} {value:>14.4g}")
    for name, data in histograms.items():
        lines.append(_histogram_row(name, data))
    lines.extend(_stage_rows(histograms))
    return "\n".join(lines)


_STAGE_HIST = re.compile(r"^serving\.shard\d+\.([a-z_]+)_seconds$")


def _stage_rows(histograms: dict) -> list[str]:
    """Derived serving-stage rows: per-stage hit counts + queue_wait p95.

    The per-shard ``serving.shard<i>.<stage>_seconds`` histograms the
    request tracer feeds are folded across shards; each frozen stage
    gets a ``serving.stage.<stage>_hits`` row, and ``queue_wait`` — the
    backpressure signal — additionally gets its aggregated p95 (same
    derived-row family as the ``*_hit_rate`` cache rows above).
    """
    from .observatory.stream import quantile_from_buckets
    from .requesttrace import TRACE_STAGES

    per_stage: dict[str, list[dict]] = {}
    for name, data in histograms.items():
        match = _STAGE_HIST.match(name)
        if match and match.group(1) in TRACE_STAGES:
            per_stage.setdefault(match.group(1), []).append(data)
    if not per_stage:
        return []
    lines = ["serving stages (all shards)"]
    for stage in TRACE_STAGES:
        entries = per_stage.get(stage)
        if not entries:
            continue
        hits = sum(entry["count"] for entry in entries)
        lines.append(f"  {'serving.stage.' + stage + '_hits':<34s} {hits:>14,}")
    queue_wait = per_stage.get("queue_wait")
    if queue_wait:
        labels = list(queue_wait[0]["buckets"])
        bounds = [float(label[len("le_"):]) for label in labels
                  if label != "inf"]
        counts = [
            sum(entry["buckets"].get(label, 0) for entry in queue_wait)
            for label in labels
        ]
        p95 = quantile_from_buckets(bounds, counts, 0.95)
        lines.append(
            f"  {'serving.queue_wait_p95':<34s} "
            f"{format_quantity(p95, 'queue_wait_seconds'):>14s}"
        )
    return lines


def render_dashboard(
    assessments: Sequence,
    snapshot: dict | None = None,
    title: str = "privacy meters",
) -> str:
    """Three-dimension score meters plus the metrics that produced them.

    ``assessments`` are
    :class:`~repro.core.assessment.MaskingAssessment` objects (anything
    with ``method_name``, ``scores``, ``grades`` and ``utility`` duck-types).
    """
    from ..core.dimensions import PrivacyDimension

    dims = (
        ("respondent", PrivacyDimension.RESPONDENT),
        ("owner", PrivacyDimension.OWNER),
        ("user", PrivacyDimension.USER),
    )
    lines = [title, "=" * len(title)]
    for assessment in assessments:
        lines.append("")
        lines.append(f"{assessment.method_name}")
        for label, dim in dims:
            score = assessment.scores[dim]
            grade = assessment.grades[dim]
            lines.append(
                f"  {label:<11s} {meter_bar(score)} {score:5.2f}  {grade}"
            )
        utility = getattr(assessment, "utility", None)
        if utility is not None:
            lines.append(f"  {'IL1s loss':<11s} {utility.il1s:.3f}")
    lines.append("")
    if snapshot is not None:
        lines.append(render_metrics(snapshot))
    return "\n".join(lines)
