"""The ``make telemetry-smoke`` scenario: instrument, capture, validate.

Runs a short S1/S3a workload (a batched query-log replay and the Schlörer
tracker against an audited database, with PIR and SMC garnish so every
instrumented layer emits something) under an enabled telemetry session,
then validates the JSONL capture line-by-line against the span schema and
checks the forensic invariants the acceptance criteria name: at least one
refusal decision must be reconstructable with a policy name and a reason.

Any schema drift or missing instrumentation raises :class:`SmokeError`,
which the CLI converts to a nonzero exit — the CI gate.

The observatory rides the same session: a live
:class:`~repro.telemetry.observatory.Observatory` subscribes to the
tracer, and the smoke asserts the attack-warning guarantee — the
tracker-probe detector's alert span is emitted *strictly before* the
attacker's differencing SUM queries run — plus replay determinism (the
captured trace re-derives exactly the alerts the live run emitted).
"""

from __future__ import annotations

from pathlib import Path

from . import instrument
from .observatory import Alert, Observatory, replay_trace, validate_alert_record
from .report import read_trace, refusal_decisions, summarize

__all__ = ["SmokeError", "run_smoke"]

#: Span names every smoke capture must contain (one per instrumented layer).
REQUIRED_SPANS = (
    "qdb.query",
    "qdb.ask_batch",
    "pir.retrieve_batch",
    "pir.keyword_lookup_batch",
)


class SmokeError(RuntimeError):
    """The smoke scenario's capture failed validation."""


def _scenario(records: int, seed: int) -> dict:
    """The instrumented workload; returns in-session ground truth."""
    from ..data import patients
    from ..pir.keyword import KeywordPIR
    from ..qdb import (
        QuerySetSizeControl,
        StatisticalDatabase,
        SumAuditPolicy,
        tracker_attack,
    )
    from ..sdc import equivalence_classes
    from ..smc.secure_sum import ring_secure_sum

    pop = patients(records, seed=seed)

    # S3a: the tracker against size control + exact auditing.  The audit
    # refuses the disclosing queries, so the capture is guaranteed to
    # contain refusal decisions with the sum-audit policy name.
    targets = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ]
    db = StatisticalDatabase(
        pop, [QuerySetSizeControl(5), SumAuditPolicy()]
    )
    tracker_outcomes = [
        tracker_attack(db, pop, t, ["height", "weight"], "blood_pressure")
        for t in targets[:3]
    ]
    # One guaranteed size-control refusal regardless of population shape.
    whole = db.ask("SELECT COUNT(*)")

    # S1-style: a repetitive query log replayed through the batched API.
    log = [
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height > 170",
        "SELECT COUNT(*) WHERE weight <= 80",
        "SELECT COUNT(*) WHERE height > 170",
    ] * 3
    replay_db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    replay_answers = replay_db.ask_batch(log)

    # PIR layer: keyword lookups ride batched positional retrievals.
    directory = KeywordPIR({f"user{i:03d}": i * 7 for i in range(32)})
    hits = [directory.lookup("user004", rng=0),
            directory.lookup("no-such-key", rng=1)]

    # SMC layer: transcript counters tagged by protocol.
    total = ring_secure_sum([3, 5, 9], transcript=None)

    # A tracker that *completes*: against size control alone the SUM
    # differencing pair goes through, so the capture contains the full
    # attack — COUNT probes, then the final SUM queries the observatory
    # must have warned before.
    open_db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    disclosure = tracker_attack(
        open_db, pop, targets[0], ["height", "weight"], "blood_pressure"
    )

    return {
        "tracker_refusals": sum(r.refusals for r in tracker_outcomes),
        "whole_count_refused": whole.refused,
        "replay_answered": sum(a.ok for a in replay_answers),
        "keyword_hit": hits[0],
        "secure_sum": total,
        "disclosure_exact": disclosure.exact,
    }


def run_smoke(
    trace_path: str | Path, records: int = 150, seed: int = 3
) -> dict:
    """Run the instrumented scenario and validate its capture.

    Returns a summary dictionary (span counts, refusal count, ground
    truth) on success; raises :class:`SmokeError` on schema drift or any
    missing instrumentation.
    """
    trace_path = Path(trace_path)
    observatory = Observatory()
    with instrument.session(trace_path) as live_tracer:
        observatory.attach(live_tracer)
        try:
            truth = _scenario(records, seed)
        finally:
            observatory.detach()

    # Schema gate: every line must parse and validate.
    spans = read_trace(trace_path, validate=True)
    if not spans:
        raise SmokeError("capture contains no spans")
    names = {span["name"] for span in spans}
    missing = [name for name in REQUIRED_SPANS if name not in names]
    if missing:
        raise SmokeError(
            f"capture is missing spans from instrumented layers: {missing}"
        )

    # Forensics gate: refusal decisions must be reconstructable.
    refusals = refusal_decisions(spans)
    if not refusals:
        raise SmokeError("capture contains no refusal decisions")
    for decision in refusals:
        if decision["policy"] == "?" or decision["reason"] == "?":
            raise SmokeError(
                f"refusal decision lost its policy or reason: {decision}"
            )
    if not truth["whole_count_refused"]:
        raise SmokeError("the guaranteed size-control refusal did not refuse")

    # Observatory gate 1: the tracker-probe alert must be in the capture
    # as a schema-valid alert span.
    alert_spans = [s for s in spans if s["name"] == "observatory.alert"]
    for record in alert_spans:
        try:
            validate_alert_record(record)
        except ValueError as exc:
            raise SmokeError(f"malformed alert span: {exc}") from exc
    tracker_alerts = [
        s for s in alert_spans if s["attrs"]["alert"] == "tracker-probe"
    ]
    if not tracker_alerts:
        raise SmokeError("the tracker attack fired no tracker-probe alert")

    # Observatory gate 2: the warning precedes the disclosure.  The SUM
    # differencing queries of the completing tracker must all carry span
    # ids larger than the first tracker-probe alert's — i.e. the alarm
    # sounded while the attacker was still probing with COUNTs.
    if not truth["disclosure_exact"]:
        raise SmokeError("the unaudited tracker did not disclose exactly")
    sum_tracker_ids = [
        s["span_id"]
        for s in spans
        if s["name"] == "qdb.query"
        and s["attrs"].get("aggregate") == "SUM"
        and "(NOT " in s["attrs"].get("predicate", "")
    ]
    if not sum_tracker_ids:
        raise SmokeError("capture contains no differencing SUM queries")
    first_alert_id = min(s["span_id"] for s in tracker_alerts)
    if first_alert_id >= min(sum_tracker_ids):
        raise SmokeError(
            "tracker-probe alert did not precede the differencing SUM pair "
            f"(alert span {first_alert_id} >= SUM span {min(sum_tracker_ids)})"
        )

    # Observatory gate 3: replay determinism — the captured trace
    # re-derives exactly the span-sourced alerts the live run emitted.
    replayed = replay_trace(spans).span_alerts()
    recorded = [Alert.from_span_attrs(s["attrs"]) for s in alert_spans]
    if replayed != recorded:
        raise SmokeError(
            f"replay drift: live run emitted {len(recorded)} alert(s), "
            f"replay derived {len(replayed)}"
        )

    stats = summarize(spans)
    return {
        "trace": str(trace_path),
        "spans": len(spans),
        "span_names": sorted(names),
        "refusal_decisions": len(refusals),
        "alerts": len(alert_spans),
        "alert_names": sorted({s["attrs"]["alert"] for s in alert_spans}),
        "per_name_counts": {name: s.count for name, s in stats.items()},
        **truth,
    }
