"""The ``make telemetry-smoke`` scenario: instrument, capture, validate.

Runs a short S1/S3a workload (a batched query-log replay and the Schlörer
tracker against an audited database, with PIR and SMC garnish so every
instrumented layer emits something) under an enabled telemetry session,
then validates the JSONL capture line-by-line against the span schema and
checks the forensic invariants the acceptance criteria name: at least one
refusal decision must be reconstructable with a policy name and a reason.

Any schema drift or missing instrumentation raises :class:`SmokeError`,
which the CLI converts to a nonzero exit — the CI gate.
"""

from __future__ import annotations

from pathlib import Path

from . import instrument
from .report import read_trace, refusal_decisions, summarize

__all__ = ["SmokeError", "run_smoke"]

#: Span names every smoke capture must contain (one per instrumented layer).
REQUIRED_SPANS = (
    "qdb.query",
    "qdb.ask_batch",
    "pir.retrieve_batch",
    "pir.keyword_lookup_batch",
)


class SmokeError(RuntimeError):
    """The smoke scenario's capture failed validation."""


def _scenario(records: int, seed: int) -> dict:
    """The instrumented workload; returns in-session ground truth."""
    from ..data import patients
    from ..pir.keyword import KeywordPIR
    from ..qdb import (
        QuerySetSizeControl,
        StatisticalDatabase,
        SumAuditPolicy,
        tracker_attack,
    )
    from ..sdc import equivalence_classes
    from ..smc.secure_sum import ring_secure_sum

    pop = patients(records, seed=seed)

    # S3a: the tracker against size control + exact auditing.  The audit
    # refuses the disclosing queries, so the capture is guaranteed to
    # contain refusal decisions with the sum-audit policy name.
    targets = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ]
    db = StatisticalDatabase(
        pop, [QuerySetSizeControl(5), SumAuditPolicy()]
    )
    tracker_outcomes = [
        tracker_attack(db, pop, t, ["height", "weight"], "blood_pressure")
        for t in targets[:3]
    ]
    # One guaranteed size-control refusal regardless of population shape.
    whole = db.ask("SELECT COUNT(*)")

    # S1-style: a repetitive query log replayed through the batched API.
    log = [
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height > 170",
        "SELECT COUNT(*) WHERE weight <= 80",
        "SELECT COUNT(*) WHERE height > 170",
    ] * 3
    replay_db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    replay_answers = replay_db.ask_batch(log)

    # PIR layer: keyword lookups ride batched positional retrievals.
    directory = KeywordPIR({f"user{i:03d}": i * 7 for i in range(32)})
    hits = [directory.lookup("user004", rng=0),
            directory.lookup("no-such-key", rng=1)]

    # SMC layer: transcript counters tagged by protocol.
    total = ring_secure_sum([3, 5, 9], transcript=None)

    return {
        "tracker_refusals": sum(r.refusals for r in tracker_outcomes),
        "whole_count_refused": whole.refused,
        "replay_answered": sum(a.ok for a in replay_answers),
        "keyword_hit": hits[0],
        "secure_sum": total,
    }


def run_smoke(
    trace_path: str | Path, records: int = 150, seed: int = 3
) -> dict:
    """Run the instrumented scenario and validate its capture.

    Returns a summary dictionary (span counts, refusal count, ground
    truth) on success; raises :class:`SmokeError` on schema drift or any
    missing instrumentation.
    """
    trace_path = Path(trace_path)
    with instrument.session(trace_path):
        truth = _scenario(records, seed)

    # Schema gate: every line must parse and validate.
    spans = read_trace(trace_path, validate=True)
    if not spans:
        raise SmokeError("capture contains no spans")
    names = {span["name"] for span in spans}
    missing = [name for name in REQUIRED_SPANS if name not in names]
    if missing:
        raise SmokeError(
            f"capture is missing spans from instrumented layers: {missing}"
        )

    # Forensics gate: refusal decisions must be reconstructable.
    refusals = refusal_decisions(spans)
    if not refusals:
        raise SmokeError("capture contains no refusal decisions")
    for decision in refusals:
        if decision["policy"] == "?" or decision["reason"] == "?":
            raise SmokeError(
                f"refusal decision lost its policy or reason: {decision}"
            )
    if not truth["whole_count_refused"]:
        raise SmokeError("the guaranteed size-control refusal did not refuse")

    stats = summarize(spans)
    return {
        "trace": str(trace_path),
        "spans": len(spans),
        "span_names": sorted(names),
        "refusal_decisions": len(refusals),
        "per_name_counts": {name: s.count for name, s in stats.items()},
        **truth,
    }
