"""Unified observability: metrics registry, structured tracing, consumers.

The subsystem the production-scale north star requires before the stack
grows further: every layer (qdb engine, PIR, SMC transcripts, SDC
pipelines) reports what it decided and what it cost through one substrate.

* :mod:`~repro.telemetry.registry` — process-wide counters, gauges and
  fixed-bucket histograms, with per-component child registries whose
  totals aggregate (and survive component GC).
* :mod:`~repro.telemetry.tracing` — nested spans with monotonic timings,
  a bounded in-memory buffer, a JSONL sink, and the frozen span schema.
* :mod:`~repro.telemetry.instrument` — the facade hot paths call; a
  strict no-op while disabled (the default), so instrumentation costs
  nothing until a session is enabled.
* :mod:`~repro.telemetry.report` / :mod:`~repro.telemetry.dashboard` —
  consumers: latency/refusal forensics from captures, and the
  privacy-meter dashboard pairing three-dimension scores with the
  operational metrics that produced them.
* :mod:`~repro.telemetry.observatory` — the streaming layer on top:
  windowed series over the live span feed, online attack detectors,
  declarative SLO alerting, and OpenMetrics/JSONL exporters.
"""

from . import instrument
from .dashboard import meter_bar, render_dashboard, render_metrics
from .observatory import (
    Alert,
    AlertRule,
    Observatory,
    RulesEngine,
    replay_trace,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    process_registry,
)
from .report import (
    TraceReport,
    alert_decisions,
    degradation_decisions,
    load_trace,
    read_trace,
    refusal_decisions,
)
from .smoke import SmokeError, run_smoke
from .tracing import (
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    Span,
    SpanSchemaError,
    Tracer,
    validate_record,
)

__all__ = [
    "Alert",
    "AlertRule",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "Observatory",
    "RulesEngine",
    "SmokeError",
    "Span",
    "SpanSchemaError",
    "TRACE_SCHEMA_VERSION",
    "TraceReport",
    "Tracer",
    "alert_decisions",
    "degradation_decisions",
    "instrument",
    "load_trace",
    "meter_bar",
    "process_registry",
    "read_trace",
    "refusal_decisions",
    "render_dashboard",
    "render_metrics",
    "replay_trace",
    "run_smoke",
    "validate_record",
]
