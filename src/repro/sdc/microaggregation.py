"""Microaggregation (Domingo-Ferrer–Mateo-Sanz [10]) via MDAV.

Records are clustered into groups of at least k similar records and each
quasi-identifier value is replaced by its group centroid.  Because every
published quasi-identifier combination is then shared by >= k records,
microaggregation on the key attributes *guarantees k-anonymity*
(Domingo-Ferrer–Torra [12]) — the bridge the paper uses in Section 2 to get
respondent and owner privacy simultaneously.

MDAV (Maximum Distance to Average Vector) is the standard fixed-size
heuristic: repeatedly take the record r furthest from the centroid, group
r with its k-1 nearest neighbours, then do the same around the record
furthest from r.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns


def _standardize(matrix: np.ndarray) -> np.ndarray:
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    return (matrix - matrix.mean(axis=0)) / std


def mdav_groups(matrix: np.ndarray, k: int) -> list[np.ndarray]:
    """Partition row indices of *matrix* into MDAV groups of size >= k.

    Returns a list of index arrays; all groups have exactly k records except
    possibly the last, which has between k and 2k - 1.
    """
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if n == 0:
        return []
    if n < 2 * k:
        return [np.arange(n, dtype=np.intp)]
    points = _standardize(np.asarray(matrix, dtype=np.float64))
    remaining = np.arange(n, dtype=np.intp)
    groups: list[np.ndarray] = []

    def nearest(idx_pool: np.ndarray, anchor: np.ndarray, count: int) -> np.ndarray:
        d = np.linalg.norm(points[idx_pool] - anchor, axis=1)
        order = np.argsort(d, kind="stable")
        return idx_pool[order[:count]]

    while remaining.size >= 3 * k:
        centroid = points[remaining].mean(axis=0)
        d = np.linalg.norm(points[remaining] - centroid, axis=1)
        r = remaining[int(np.argmax(d))]
        group_r = nearest(remaining, points[r], k)
        remaining = np.setdiff1d(remaining, group_r, assume_unique=True)
        groups.append(group_r)
        d2 = np.linalg.norm(points[remaining] - points[r], axis=1)
        s = remaining[int(np.argmax(d2))]
        group_s = nearest(remaining, points[s], k)
        remaining = np.setdiff1d(remaining, group_s, assume_unique=True)
        groups.append(group_s)
    if remaining.size >= 2 * k:
        centroid = points[remaining].mean(axis=0)
        d = np.linalg.norm(points[remaining] - centroid, axis=1)
        r = remaining[int(np.argmax(d))]
        group_r = nearest(remaining, points[r], k)
        remaining = np.setdiff1d(remaining, group_r, assume_unique=True)
        groups.append(group_r)
    groups.append(remaining)
    return groups


class Microaggregation(MaskingMethod):
    """Multivariate microaggregation of the quasi-identifiers via MDAV.

    Parameters
    ----------
    k:
        Minimum group size; the release is k-anonymous on the aggregated
        columns.
    columns:
        Columns to aggregate; defaults to the schema's (numeric)
        quasi-identifiers.
    """

    def __init__(self, k: int, columns: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.columns = columns
        self.name = f"microaggregation(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns:
            return data.copy()
        matrix = data.matrix(columns)
        masked = matrix.copy()
        for group in mdav_groups(matrix, self.k):
            masked[group] = matrix[group].mean(axis=0)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, masked[:, j])
        return out


def univariate_microaggregation(values: Sequence[float], k: int) -> np.ndarray:
    """Optimal-ordering univariate microaggregation.

    Sorts the values and aggregates consecutive runs of k (the classical
    fixed-size univariate scheme); ties keep input order.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    out = values.copy()
    n = values.size
    if n == 0:
        return out
    if n < 2 * k:
        out[:] = values.mean()
        return out
    n_groups = n // k
    bounds = [i * k for i in range(n_groups)] + [n]
    for start, end in zip(bounds[:-1], bounds[1:]):
        idx = order[start:end]
        out[idx] = values[idx].mean()
    return out
