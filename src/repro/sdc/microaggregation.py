"""Microaggregation (Domingo-Ferrer–Mateo-Sanz [10]) via MDAV.

Records are clustered into groups of at least k similar records and each
quasi-identifier value is replaced by its group centroid.  Because every
published quasi-identifier combination is then shared by >= k records,
microaggregation on the key attributes *guarantees k-anonymity*
(Domingo-Ferrer–Torra [12]) — the bridge the paper uses in Section 2 to get
respondent and owner privacy simultaneously.

MDAV (Maximum Distance to Average Vector) is the standard fixed-size
heuristic: repeatedly take the record r furthest from the centroid, group
r with its k-1 nearest neighbours, then do the same around the record
furthest from r.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns


def _standardize(matrix: np.ndarray) -> np.ndarray:
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    return (matrix - matrix.mean(axis=0)) / std


def mdav_groups(matrix: np.ndarray, k: int) -> list[np.ndarray]:
    """Partition row indices of *matrix* into MDAV groups of size >= k.

    Returns a list of index arrays; all groups have exactly k records except
    possibly the last, which has between k and 2k - 1.

    The records still to be grouped are tracked with a boolean ``alive``
    mask over precomputed standardized points (no per-round
    ``np.setdiff1d`` re-materialization), the k nearest neighbours are
    selected with ``np.argpartition`` (O(m) instead of a full O(m log m)
    sort, with a stable tie-break on the partition boundary so results
    match a stable full sort exactly), and the pool centroid is maintained
    as a running sum updated as groups are carved off.
    """
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if n == 0:
        return []
    if n < 2 * k:
        return [np.arange(n, dtype=np.intp)]
    points = _standardize(np.asarray(matrix, dtype=np.float64))
    alive = np.ones(n, dtype=bool)
    n_alive = n
    pool_sum = points.sum(axis=0)
    groups: list[np.ndarray] = []

    def nearest(pool: np.ndarray, d: np.ndarray, count: int) -> np.ndarray:
        # k smallest distances; ties on the boundary value are broken by
        # pool position (ascending index), matching a stable argsort.
        if d.size <= count:
            return pool
        kth = np.partition(d, count - 1)[count - 1]
        cand = np.flatnonzero(d <= kth)
        order = np.argsort(d[cand], kind="stable")[:count]
        return pool[cand[order]]

    def carve(anchor: np.ndarray) -> np.ndarray:
        nonlocal n_alive, pool_sum
        pool = np.flatnonzero(alive)
        d = np.linalg.norm(points[pool] - anchor, axis=1)
        group = nearest(pool, d, k)
        alive[group] = False
        n_alive -= group.size
        pool_sum = pool_sum - points[group].sum(axis=0)
        groups.append(group)
        return group

    def farthest_from_centroid() -> int:
        pool = np.flatnonzero(alive)
        centroid = pool_sum / n_alive
        d = np.linalg.norm(points[pool] - centroid, axis=1)
        return int(pool[int(np.argmax(d))])

    while n_alive >= 3 * k:
        r = farthest_from_centroid()
        carve(points[r])
        pool = np.flatnonzero(alive)
        d2 = np.linalg.norm(points[pool] - points[r], axis=1)
        s = int(pool[int(np.argmax(d2))])
        carve(points[s])
    if n_alive >= 2 * k:
        r = farthest_from_centroid()
        carve(points[r])
    groups.append(np.flatnonzero(alive).astype(np.intp))
    return groups


class Microaggregation(MaskingMethod):
    """Multivariate microaggregation of the quasi-identifiers via MDAV.

    Parameters
    ----------
    k:
        Minimum group size; the release is k-anonymous on the aggregated
        columns.
    columns:
        Columns to aggregate; defaults to the schema's (numeric)
        quasi-identifiers.
    """

    def __init__(self, k: int, columns: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.columns = columns
        self.name = f"microaggregation(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns:
            return data.copy()
        matrix = data.matrix(columns)
        masked = matrix.copy()
        for group in mdav_groups(matrix, self.k):
            masked[group] = matrix[group].mean(axis=0)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, masked[:, j])
        return out


def univariate_microaggregation(values: Sequence[float], k: int) -> np.ndarray:
    """Optimal-ordering univariate microaggregation.

    Sorts the values and aggregates consecutive runs of k (the classical
    fixed-size univariate scheme); ties keep input order.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    out = values.copy()
    n = values.size
    if n == 0:
        return out
    if n < 2 * k:
        out[:] = values.mean()
        return out
    n_groups = n // k
    bounds = [i * k for i in range(n_groups)] + [n]
    for start, end in zip(bounds[:-1], bounds[1:]):
        idx = order[start:end]
        out[idx] = values[idx].mean()
    return out
