"""2^d-tree blocking for microaggregating very large datasets.

MDAV is O(n²); Solanas, Martínez-Ballesté, Domingo-Ferrer and Mateo-Sanz
proposed partitioning the data with a 2^d tree (recursive median splits on
every dimension simultaneously) into bounded blocks and microaggregating
within each block — near-MDAV quality at near-linear cost.  This module
implements that blocking and a :class:`BlockedMicroaggregation` masking
method, benchmarked against plain MDAV in ``bench_blocking.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns
from .microaggregation import mdav_groups


def tree_blocks(
    matrix: np.ndarray, max_block: int, min_block: int
) -> list[np.ndarray]:
    """Partition row indices with recursive simultaneous median splits.

    Each node splits on the median of *every* dimension at once, creating
    up to 2^d children; recursion stops when a block is at most
    ``max_block`` rows.  Children that would fall below ``min_block`` are
    merged back into a sibling so every block can still host at least one
    microaggregation group.
    """
    n, d = matrix.shape
    if max_block < min_block:
        raise ValueError("max_block must be >= min_block")

    def split(indices: np.ndarray) -> list[np.ndarray]:
        if indices.size <= max_block:
            return [indices]
        block = matrix[indices]
        medians = np.median(block, axis=0)
        # Corner code of each record: bit j set iff value > median_j.
        codes = (block > medians[None, :]).astype(np.int64)
        corner = codes @ (1 << np.arange(d))
        children = [
            indices[corner == c] for c in range(1 << d)
        ]
        children = [c for c in children if c.size]
        if len(children) <= 1:
            return [indices]  # degenerate (many ties): stop splitting
        # Merge undersized children into the largest sibling.
        children.sort(key=lambda c: c.size)
        merged: list[np.ndarray] = []
        for child in children:
            if child.size < min_block and merged:
                merged[-1] = np.concatenate([merged[-1], child])
            elif child.size < min_block:
                merged.append(child)
            else:
                merged.append(child)
        # A leading undersized block may remain; fold it into the largest.
        if len(merged) > 1 and merged[0].size < min_block:
            merged[1] = np.concatenate([merged[1], merged[0]])
            merged = merged[1:]
        out: list[np.ndarray] = []
        for child in merged:
            if child.size < indices.size:
                out.extend(split(child))
            else:
                out.append(child)
        return out

    return split(np.arange(n, dtype=np.intp))


class BlockedMicroaggregation(MaskingMethod):
    """MDAV microaggregation inside 2^d-tree blocks.

    Parameters
    ----------
    k:
        Minimum group size (the release stays k-anonymous: blocks never
        shrink below k and MDAV enforces group sizes within each block).
    max_block:
        Target maximum records per block; smaller = faster, slightly more
        information loss.
    """

    def __init__(
        self,
        k: int,
        max_block: int = 256,
        columns: Sequence[str] | None = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if max_block < 2 * k:
            raise ValueError("max_block must be at least 2k")
        self.k = k
        self.max_block = max_block
        self.columns = columns
        self.name = f"blocked-microaggregation(k={k},B={max_block})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns:
            return data.copy()
        matrix = data.matrix(columns)
        masked = matrix.copy()
        for block in tree_blocks(matrix, self.max_block, self.k):
            for group in mdav_groups(matrix[block], self.k):
                rows = block[group]
                masked[rows] = matrix[rows].mean(axis=0)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, masked[:, j])
        return out
