"""Refinements of k-anonymity for confidential attributes.

Footnote 3 of the paper: if all records in an equivalence class share the
value of a confidential attribute, k-anonymity does not protect the
respondents — *p-sensitive k-anonymity* (Truta–Vinay [24]) additionally
requires at least p distinct confidential values per class.  We also
provide the closely related distinct l-diversity check.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..data.table import Dataset
from .kanonymity import equivalence_classes, is_k_anonymous


def sensitivity_level(
    data: Dataset,
    confidential: Sequence[str] | None = None,
    quasi_identifiers: Sequence[str] | None = None,
) -> int:
    """Largest p such that every class has >= p distinct values of every
    confidential attribute (0 for an empty dataset)."""
    if data.n_rows == 0:
        return 0
    conf = list(confidential) if confidential is not None else list(
        data.confidential_attributes
    )
    if not conf:
        raise ValueError("no confidential attributes specified or in schema")
    p = data.n_rows
    for cls in equivalence_classes(data, quasi_identifiers):
        for attr in conf:
            column = data.column(attr)
            distinct = len({column[i] for i in cls.indices})
            p = min(p, distinct)
    return p


def is_p_sensitive_k_anonymous(
    data: Dataset,
    p: int,
    k: int,
    confidential: Sequence[str] | None = None,
    quasi_identifiers: Sequence[str] | None = None,
) -> bool:
    """Truta–Vinay p-sensitive k-anonymity check [24]."""
    if p < 1:
        raise ValueError("p must be >= 1")
    if not is_k_anonymous(data, k, quasi_identifiers):
        return False
    return sensitivity_level(data, confidential, quasi_identifiers) >= p


def distinct_l_diversity(
    data: Dataset,
    confidential_attribute: str,
    quasi_identifiers: Sequence[str] | None = None,
) -> int:
    """Distinct l-diversity of one confidential attribute.

    Returns the minimum, over equivalence classes, of the number of distinct
    values the attribute takes within the class.
    """
    if data.n_rows == 0:
        return 0
    column = data.column(confidential_attribute)
    return min(
        len({column[i] for i in cls.indices})
        for cls in equivalence_classes(data, quasi_identifiers)
    )


def homogeneous_classes(
    data: Dataset,
    confidential_attribute: str,
    quasi_identifiers: Sequence[str] | None = None,
) -> list[tuple]:
    """Keys of classes where the confidential attribute is constant.

    These are the classes subject to the *homogeneity attack* that
    p-sensitive k-anonymity exists to prevent.
    """
    column = data.column(confidential_attribute)
    keys = []
    for cls in equivalence_classes(data, quasi_identifiers):
        if len({column[i] for i in cls.indices}) == 1:
            keys.append(cls.key)
    return keys
