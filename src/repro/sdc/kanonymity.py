"""k-Anonymity verification (Samarati–Sweeney [20, 21, 23]).

A dataset is k-anonymous with respect to a set of quasi-identifier (key)
attributes when every combination of values of those attributes is shared
by at least k records.  The paper's Dataset 1 satisfies this *spontaneously*
for k = 3 on (height, weight); Dataset 2 does not.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset


@dataclass(frozen=True)
class EquivalenceClass:
    """A maximal set of records sharing quasi-identifier values."""

    key: tuple
    indices: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of records in the class."""
        return len(self.indices)


def equivalence_classes(
    data: Dataset, quasi_identifiers: Sequence[str] | None = None
) -> list[EquivalenceClass]:
    """Partition records into equivalence classes on the quasi-identifiers."""
    qi = list(quasi_identifiers) if quasi_identifiers is not None else list(
        data.quasi_identifiers
    )
    if not qi:
        raise ValueError("no quasi-identifier columns specified or in schema")
    groups = data.group_by(qi)
    return [
        EquivalenceClass(key, tuple(int(i) for i in idx))
        for key, idx in groups.items()
    ]


def anonymity_level(
    data: Dataset, quasi_identifiers: Sequence[str] | None = None
) -> int:
    """Return the largest k for which *data* is k-anonymous (0 if empty)."""
    if data.n_rows == 0:
        return 0
    classes = equivalence_classes(data, quasi_identifiers)
    return min(c.size for c in classes)


def is_k_anonymous(
    data: Dataset, k: int, quasi_identifiers: Sequence[str] | None = None
) -> bool:
    """True when every equivalence class has at least *k* records."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if data.n_rows == 0:
        return True
    return anonymity_level(data, quasi_identifiers) >= k


def violating_indices(
    data: Dataset, k: int, quasi_identifiers: Sequence[str] | None = None
) -> np.ndarray:
    """Row indices belonging to equivalence classes smaller than *k*."""
    bad: list[int] = []
    for cls in equivalence_classes(data, quasi_identifiers):
        if cls.size < k:
            bad.extend(cls.indices)
    return np.asarray(sorted(bad), dtype=np.intp)


def class_size_histogram(
    data: Dataset, quasi_identifiers: Sequence[str] | None = None
) -> dict[int, int]:
    """Map equivalence-class size -> number of classes of that size."""
    histogram: dict[int, int] = {}
    for cls in equivalence_classes(data, quasi_identifiers):
        histogram[cls.size] = histogram.get(cls.size, 0) + 1
    return dict(sorted(histogram.items()))
