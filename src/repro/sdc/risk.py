"""Disclosure-risk measures for masked releases.

The respondent-privacy meter of the framework rests on these measures:

* **Record-linkage risk** — the paper's intruder "can easily gauge the
  height and weight of an individual he knows in order to link the identity
  of that individual to a record in the dataset".  We model this as
  distance-based record linkage between the intruder's (possibly noisy)
  knowledge of quasi-identifiers and the released file.
* **Uniqueness** — the fraction of records whose quasi-identifier
  combination is shared by fewer than k records (population uniques for
  k = 1), the quantity k-anonymity drives to zero.
* **Interval disclosure** — even without an exact link, a masked value that
  stays within a small interval around the original leaks it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from .base import resolve_rng
from .kanonymity import equivalence_classes


def _aligned_numeric(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None
) -> tuple[list[str], np.ndarray, np.ndarray]:
    if columns is None:
        columns = [
            c for c in original.quasi_identifiers
            if c in masked.column_names
            and original.is_numeric(c) and masked.is_numeric(c)
        ]
        if not columns:
            columns = [
                c for c in original.numeric_columns()
                if c in masked.column_names and masked.is_numeric(c)
            ]
    else:
        columns = [
            c for c in columns
            if original.is_numeric(c) and masked.is_numeric(c)
        ]
    return columns, original.matrix(columns), masked.matrix(columns)


def class_linkage_rate(
    masked: Dataset, quasi_identifiers: Sequence[str] | None = None
) -> float:
    """Expected linkage success against a categorical/generalized release.

    An intruder who knows which equivalence class the target's record falls
    into picks uniformly within it, succeeding with probability 1/size.
    This is the natural linkage model once quasi-identifiers have been
    recoded to labels or suppressed (it equals 1 for a release of uniques
    and 1/k for a k-anonymous one).
    """
    if masked.n_rows == 0:
        return 0.0
    total = sum(
        1.0  # each of the cls.size records is linked with prob 1/size
        for cls in equivalence_classes(masked, quasi_identifiers)
    )
    return total / masked.n_rows


def distance_linkage_rate(
    original: Dataset,
    masked: Dataset,
    columns: Sequence[str] | None = None,
    intruder_noise_sd: float = 0.0,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Fraction of records an intruder links correctly.

    The intruder knows each target's quasi-identifier vector (perturbed by
    ``intruder_noise_sd`` standard deviations of measurement error, e.g.
    from "gauging" someone's height) and links it to the nearest record of
    the masked release.  A link counts as correct when it hits the masked
    record derived from the target; ties are split uniformly at random
    (so a k-anonymous release yields a rate close to 1/k).

    Requires the masked release to be row-aligned with the original (true
    for all masking methods in :mod:`repro.sdc`).
    """
    if masked.n_rows != original.n_rows:
        raise ValueError("linkage rate needs row-aligned original and masked data")
    if original.n_rows == 0:
        return 0.0
    rng = resolve_rng(rng)
    requested = columns
    columns, x, y = _aligned_numeric(original, masked, columns)
    if not columns:
        # Quasi-identifiers were recoded to labels/suppressed: fall back to
        # the equivalence-class linkage model.
        return class_linkage_rate(masked, requested)
    scale = x.std(axis=0)
    scale[scale == 0] = 1.0
    known = x + rng.normal(0.0, intruder_noise_sd, x.shape) * scale
    xs, ys = known / scale, y / scale
    hits = 0.0
    for i in range(xs.shape[0]):
        d = np.linalg.norm(ys - xs[i], axis=1)
        best = d.min()
        ties = np.flatnonzero(np.isclose(d, best, rtol=1e-9, atol=1e-12))
        if i in ties:
            hits += 1.0 / ties.size
    return hits / xs.shape[0]


def uniqueness_rate(
    data: Dataset, quasi_identifiers: Sequence[str] | None = None, k: int = 1
) -> float:
    """Fraction of records in equivalence classes of size < max(k, 2)...

    With the default ``k = 1`` this is the classical *sample uniques*
    proportion: records whose key-attribute combination is unique.
    """
    if data.n_rows == 0:
        return 0.0
    threshold = max(k, 1)
    exposed = sum(
        cls.size
        for cls in equivalence_classes(data, quasi_identifiers)
        if cls.size <= threshold
    )
    return exposed / data.n_rows


def interval_disclosure_rate(
    original: Dataset,
    masked: Dataset,
    columns: Sequence[str] | None = None,
    interval_pct: float = 10.0,
) -> float:
    """Fraction of masked cells within ±p% of the attribute spread.

    For each numeric cell, disclosure occurs when the masked value lies
    within ``interval_pct/100 * std`` of the original value; the rate is
    averaged over all cells.  Unmasked data score 1.0.
    """
    if masked.n_rows != original.n_rows:
        raise ValueError("interval disclosure needs row-aligned datasets")
    columns, x, y = _aligned_numeric(original, masked, columns)
    if not columns or x.size == 0:
        return 0.0  # recoded to labels: no numeric value is disclosed
    std = x.std(axis=0)
    std[std == 0] = 1.0
    within = np.abs(y - x) <= (interval_pct / 100.0) * std
    return float(within.mean())


def unique_interval_disclosure_rate(
    original: Dataset,
    masked: Dataset,
    columns: Sequence[str] | None = None,
    interval_pct: float = 20.0,
) -> float:
    """Interval disclosure restricted to re-identifiable records.

    A masked value within ±p%·std of the original only *re-identifies* the
    respondent when the masked record's key-attribute combination is unique
    in the release — otherwise the (approximate) key still maps to several
    respondents (the paper's k-anonymity argument).  Rate = per-cell
    interval-disclosure fraction (the standard SDC measure), counted only
    on release-unique records.
    """
    if masked.n_rows != original.n_rows:
        raise ValueError("interval disclosure needs row-aligned datasets")
    if original.n_rows == 0:
        return 0.0
    columns, x, y = _aligned_numeric(original, masked, columns)
    if not columns or x.size == 0:
        return 0.0
    std = x.std(axis=0)
    std[std == 0] = 1.0
    within = np.abs(y - x) <= (interval_pct / 100.0) * std
    singleton = np.zeros(masked.n_rows, dtype=bool)
    for cls in equivalence_classes(masked, columns):
        if cls.size == 1:
            singleton[list(cls.indices)] = True
    return float((within * singleton[:, None]).mean())


@dataclass(frozen=True)
class RiskReport:
    """Bundle of disclosure-risk measures for one release."""

    linkage_rate: float
    uniqueness: float
    interval_disclosure: float

    @property
    def respondent_privacy(self) -> float:
        """Overall respondent-privacy score in [0, 1] (1 = private).

        The complement of the dominant risk channel: an intruder uses
        whichever of linkage or interval disclosure works better.
        """
        return 1.0 - max(self.linkage_rate, self.interval_disclosure)


def assess_risk(
    original: Dataset,
    masked: Dataset,
    columns: Sequence[str] | None = None,
    intruder_noise_sd: float = 0.0,
    interval_pct: float = 10.0,
    rng: np.random.Generator | int | None = 0,
) -> RiskReport:
    """Run all risk measures and return a :class:`RiskReport`."""
    if masked.n_rows == original.n_rows:
        linkage = distance_linkage_rate(
            original, masked, columns, intruder_noise_sd, rng
        )
        interval = interval_disclosure_rate(original, masked, columns, interval_pct)
    else:
        # Record suppression changed the row count: approximate by linking
        # only the surviving records (conservative for the remaining ones).
        linkage = 0.0
        interval = 0.0
    unique = uniqueness_rate(masked, columns)
    return RiskReport(linkage, unique, interval)
