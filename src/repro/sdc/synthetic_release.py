"""Fully synthetic data release (Gaussian copula).

The most owner-protective non-crypto release short of crypto PPDM: no
original record appears at all.  The generator fits a Gaussian copula —
per-column empirical marginals plus the rank-correlation structure — and
samples entirely new records from it.  Marginal distributions and
correlations are preserved (so generic analyses remain valid, the
"generic non-crypto PPDM" promise), while record linkage has no true
counterpart to find.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import stats

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns, resolve_rng


def fit_copula(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (sorted column values, latent normal correlation matrix)."""
    n, d = matrix.shape
    sorted_values = np.sort(matrix, axis=0)
    # Transform to normal scores via ranks.
    z = np.empty_like(matrix)
    for j in range(d):
        ranks = stats.rankdata(matrix[:, j], method="average")
        z[:, j] = stats.norm.ppf(ranks / (n + 1))
    corr = np.corrcoef(z, rowvar=False) if d > 1 else np.ones((1, 1))
    corr = np.atleast_2d(np.nan_to_num(corr, nan=0.0))
    np.fill_diagonal(corr, 1.0)
    return sorted_values, corr


def sample_copula(
    sorted_values: np.ndarray,
    corr: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample synthetic rows matching the fitted copula."""
    d = sorted_values.shape[1]
    jitter = 1e-9 * np.eye(d)
    z = rng.multivariate_normal(
        np.zeros(d), corr + jitter, size=n_samples, method="svd"
    )
    u = stats.norm.cdf(z)
    out = np.empty((n_samples, d))
    n = sorted_values.shape[0]
    for j in range(d):
        # Inverse empirical CDF with linear interpolation between order
        # statistics.
        positions = u[:, j] * (n - 1)
        lo = np.floor(positions).astype(int)
        hi = np.minimum(lo + 1, n - 1)
        frac = positions - lo
        out[:, j] = (
            sorted_values[lo, j] * (1 - frac) + sorted_values[hi, j] * frac
        )
    return out


class SyntheticRelease(MaskingMethod):
    """Replace numeric quasi-identifiers with fully synthetic values.

    Each released record's quasi-identifier vector is drawn fresh from the
    fitted copula; confidential columns are carried through unchanged so
    analyses relating them to the (synthetic) quasi-identifiers remain
    approximately valid at the distribution level.
    """

    def __init__(self, columns: Sequence[str] | None = None):
        self.columns = columns
        self.name = "synthetic-copula"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns or data.n_rows < 2:
            return data.copy()
        matrix = data.matrix(columns)
        sorted_values, corr = fit_copula(matrix)
        synthetic = sample_copula(sorted_values, corr, data.n_rows, rng)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, synthetic[:, j])
        return out
