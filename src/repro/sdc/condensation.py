"""Condensation (Aggarwal–Yu [1]).

Condensation groups records into clusters of size k, records first- and
second-order statistics of each cluster, and regenerates *synthetic*
records from those statistics.  Because the covariance structure of the
original attributes is preserved, a wide range of analyses remain valid on
the masked data — the paper's example of a PPDM method that, being a
special case of multivariate microaggregation on the key attributes, also
yields k-anonymity-grade respondent privacy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns, resolve_rng
from .microaggregation import mdav_groups


@dataclass(frozen=True)
class GroupStatistics:
    """First and second moments of one condensation group."""

    size: int
    mean: np.ndarray
    covariance: np.ndarray


def group_statistics(matrix: np.ndarray, groups: Sequence[np.ndarray]) -> list[GroupStatistics]:
    """Compute per-group mean and covariance."""
    stats = []
    for group in groups:
        block = matrix[group]
        mean = block.mean(axis=0)
        if block.shape[0] > 1:
            cov = np.cov(block, rowvar=False, bias=False)
            cov = np.atleast_2d(cov)
        else:
            cov = np.zeros((block.shape[1], block.shape[1]))
        stats.append(GroupStatistics(block.shape[0], mean, cov))
    return stats


def _sample_group(stat: GroupStatistics, rng: np.random.Generator) -> np.ndarray:
    """Draw ``stat.size`` synthetic records matching the group moments."""
    dim = stat.mean.shape[0]
    if stat.size == 1:
        return stat.mean.reshape(1, dim)
    # Draw from the multivariate normal implied by the group moments, then
    # re-centre so the synthetic group mean matches exactly.
    jitter = 1e-9 * np.eye(dim)
    sample = rng.multivariate_normal(
        stat.mean, stat.covariance + jitter, size=stat.size, method="svd"
    )
    sample += stat.mean - sample.mean(axis=0)
    return sample


class Condensation(MaskingMethod):
    """Condensation-based masking of the numeric quasi-identifiers.

    Parameters
    ----------
    k:
        Group size (condensation level); larger k = stronger privacy.
    columns:
        Numeric columns to condense; defaults to schema quasi-identifiers.
    preserve_order:
        When true (default), synthetic records are assigned back to the
        original row positions group by group, keeping confidential columns
        aligned with a *synthetic* quasi-identifier vector from the same
        statistical neighbourhood.
    """

    def __init__(self, k: int, columns: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.columns = columns
        self.name = f"condensation(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns:
            return data.copy()
        matrix = data.matrix(columns)
        groups = mdav_groups(matrix, self.k)
        synthetic = matrix.copy()
        for stat, group in zip(group_statistics(matrix, groups), groups):
            synthetic[group] = _sample_group(stat, rng)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, synthetic[:, j])
        return out
