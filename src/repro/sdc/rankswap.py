"""Rank swapping.

Each numeric value is swapped with another value whose rank lies within a
window of ``p`` percent of the number of records.  Rank swapping preserves
univariate distributions exactly (the multiset of values is unchanged) while
breaking the record-level link between quasi-identifiers — a standard SDC
masking method from the Hundepool et al. handbook [17].
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns, resolve_rng


def rank_swap_column(
    values: Sequence[float], window_pct: float, rng: np.random.Generator
) -> np.ndarray:
    """Rank-swap one column; returns a new array with the same value multiset."""
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n < 2:
        return values.copy()
    window = max(1, int(round(window_pct / 100.0 * n)))
    order = np.argsort(values, kind="stable")
    ranks = order.copy()
    swapped = values.copy()
    used = np.zeros(n, dtype=bool)
    for pos in range(n):
        if used[ranks[pos]]:
            continue
        hi = min(n - 1, pos + window)
        candidates = [
            q for q in range(pos + 1, hi + 1) if not used[ranks[q]]
        ]
        if not candidates:
            used[ranks[pos]] = True
            continue
        q = int(rng.choice(candidates))
        i, j = ranks[pos], ranks[q]
        swapped[i], swapped[j] = swapped[j], swapped[i]
        used[i] = used[j] = True
    return swapped


class RankSwap(MaskingMethod):
    """Rank swapping of numeric quasi-identifiers within a p% window."""

    def __init__(self, window_pct: float = 15.0, columns: Sequence[str] | None = None):
        if window_pct <= 0:
            raise ValueError("window_pct must be positive")
        self.window_pct = float(window_pct)
        self.columns = columns
        self.name = f"rankswap(p={window_pct:g}%)"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            out = out.with_column(
                name, rank_swap_column(data.column(name), self.window_pct, rng)
            )
        return out
