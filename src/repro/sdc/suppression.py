"""Local suppression.

The bluntest masking instrument: delete records (or blank individual cells)
that violate k-anonymity.  The paper lists suppression among the ways to
k-anonymize in Section 6 ("via microaggregation-condensation, recoding,
suppression, etc.").
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.hierarchy import SUPPRESSED
from ..data.table import Dataset
from ..telemetry import instrument as tele
from .base import MaskingMethod
from .kanonymity import violating_indices


def suppress_records(
    data: Dataset, k: int, quasi_identifiers: Sequence[str] | None = None
) -> Dataset:
    """Drop every record in an equivalence class smaller than *k*."""
    bad = violating_indices(data, k, quasi_identifiers)
    tele.counter("sdc.records_suppressed").inc(int(bad.size))
    if bad.size == 0:
        return data.copy()
    keep = np.setdiff1d(np.arange(data.n_rows), bad)
    return data.select(keep)


def suppress_cells(
    data: Dataset, k: int, quasi_identifiers: Sequence[str] | None = None
) -> Dataset:
    """Blank the quasi-identifier cells of violating records to ``"*"``.

    Keeps the record count (and the confidential payload) intact while
    removing the linkable key values.
    """
    qi = list(quasi_identifiers) if quasi_identifiers is not None else list(
        data.quasi_identifiers
    )
    bad = violating_indices(data, k, qi)
    tele.counter("sdc.cells_suppressed").inc(int(bad.size) * len(qi))
    out = data.copy()
    if bad.size == 0:
        return out
    for name in qi:
        col = out.column(name).astype(object)
        col[bad] = SUPPRESSED
        out = out.with_column(name, col)
    return out


class RecordSuppression(MaskingMethod):
    """Masking method that deletes k-anonymity-violating records."""

    def __init__(self, k: int, quasi_identifiers: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.quasi_identifiers = quasi_identifiers
        self.name = f"record-suppression(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        return suppress_records(data, self.k, self.quasi_identifiers)


class CellSuppression(MaskingMethod):
    """Masking method that blanks violating quasi-identifier cells."""

    def __init__(self, k: int, quasi_identifiers: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.quasi_identifiers = quasi_identifiers
        self.name = f"cell-suppression(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        return suppress_cells(data, self.k, self.quasi_identifiers)
