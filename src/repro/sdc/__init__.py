"""Statistical disclosure control: respondent-privacy masking and metrics."""

from .base import IdentityMasking, MaskingMethod, resolve_rng
from .blocking import BlockedMicroaggregation, tree_blocks
from .coarsening import Rounding, TopBottomCoding
from .condensation import Condensation, GroupStatistics, group_statistics
from .diversity import (
    distinct_l_diversity,
    homogeneous_classes,
    is_p_sensitive_k_anonymous,
    sensitivity_level,
)
from .generalization import (
    GlobalRecoding,
    RecodingResult,
    apply_recoding,
    minimal_generalization,
)
from .kanonymity import (
    EquivalenceClass,
    anonymity_level,
    class_size_histogram,
    equivalence_classes,
    is_k_anonymous,
    violating_indices,
)
from .microaggregation import (
    Microaggregation,
    mdav_groups,
    univariate_microaggregation,
)
from .mondrian import MondrianKAnonymizer, mondrian_partition
from .noise import (
    CorrelatedNoise,
    LaplaceNoise,
    MultiplicativeNoise,
    UncorrelatedNoise,
)
from .psensitive import PSensitiveMicroaggregation, merge_to_p_sensitive
from .pram import (
    Pram,
    TransitionMatrix,
    invariant_matrix,
    retention_matrix,
    unbiased_frequencies,
)
from .rankswap import RankSwap, rank_swap_column
from .risk import (
    class_linkage_rate,
    RiskReport,
    assess_risk,
    distance_linkage_rate,
    interval_disclosure_rate,
    unique_interval_disclosure_rate,
    uniqueness_rate,
)
from .synthetic_release import SyntheticRelease, fit_copula, sample_copula
from .suppression import (
    CellSuppression,
    RecordSuppression,
    suppress_cells,
    suppress_records,
)
from .utility import (
    UtilityReport,
    assess_utility,
    correlation_discrepancy,
    covariance_discrepancy,
    distinguishability,
    il1s,
    mean_discrepancy,
    quantile_distortion,
)

__all__ = [
    "BlockedMicroaggregation",
    "CellSuppression",
    "Condensation",
    "CorrelatedNoise",
    "EquivalenceClass",
    "GlobalRecoding",
    "GroupStatistics",
    "IdentityMasking",
    "LaplaceNoise",
    "MaskingMethod",
    "Microaggregation",
    "MondrianKAnonymizer",
    "MultiplicativeNoise",
    "PSensitiveMicroaggregation",
    "Pram",
    "RankSwap",
    "RecodingResult",
    "RecordSuppression",
    "Rounding",
    "RiskReport",
    "SyntheticRelease",
    "TopBottomCoding",
    "TransitionMatrix",
    "UncorrelatedNoise",
    "UtilityReport",
    "anonymity_level",
    "apply_recoding",
    "assess_risk",
    "assess_utility",
    "class_linkage_rate",
    "class_size_histogram",
    "correlation_discrepancy",
    "covariance_discrepancy",
    "distance_linkage_rate",
    "distinguishability",
    "distinct_l_diversity",
    "equivalence_classes",
    "fit_copula",
    "group_statistics",
    "homogeneous_classes",
    "il1s",
    "invariant_matrix",
    "interval_disclosure_rate",
    "is_k_anonymous",
    "is_p_sensitive_k_anonymous",
    "mdav_groups",
    "mean_discrepancy",
    "merge_to_p_sensitive",
    "minimal_generalization",
    "mondrian_partition",
    "quantile_distortion",
    "rank_swap_column",
    "retention_matrix",
    "resolve_rng",
    "sample_copula",
    "sensitivity_level",
    "suppress_cells",
    "suppress_records",
    "tree_blocks",
    "unbiased_frequencies",
    "univariate_microaggregation",
    "unique_interval_disclosure_rate",
    "uniqueness_rate",
    "violating_indices",
]
