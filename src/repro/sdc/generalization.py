"""Global recoding over generalization hierarchies.

Full-domain generalization (Samarati [20], Sweeney [21]): every value of a
quasi-identifier is recoded to the same hierarchy level, and a lattice over
per-attribute levels is searched for a minimal node achieving k-anonymity
(optionally after suppressing a bounded fraction of outlier records).
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..data.hierarchy import Hierarchy
from ..data.table import Dataset
from ..telemetry import instrument as tele
from .base import MaskingMethod
from .kanonymity import violating_indices


def apply_recoding(
    data: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    levels: Mapping[str, int],
) -> Dataset:
    """Recode each hierarchy-covered column to its level in *levels*."""
    out = data.copy()
    for name, hierarchy in hierarchies.items():
        level = levels.get(name, 0)
        if level == 0:
            continue
        out = out.with_column(name, hierarchy.generalize(data.column(name), level))
    return out


@dataclass(frozen=True)
class RecodingResult:
    """Outcome of a lattice search."""

    levels: dict[str, int]
    suppressed: tuple[int, ...]
    data: Dataset

    @property
    def total_level(self) -> int:
        """Sum of per-attribute generalization levels (the search cost)."""
        return sum(self.levels.values())


def _lattice_nodes(hierarchies: Mapping[str, Hierarchy]):
    """All level vectors, ordered by total generalization then lexically."""
    names = list(hierarchies)
    ranges = [range(hierarchies[n].levels) for n in names]
    nodes = sorted(itertools.product(*ranges), key=lambda t: (sum(t), t))
    for node in nodes:
        yield dict(zip(names, node))


def minimal_generalization(
    data: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    k: int,
    max_suppression: float = 0.0,
) -> RecodingResult:
    """Find a minimal full-domain generalization achieving k-anonymity.

    Searches the level lattice in order of total generalization; at each
    node, records still violating k-anonymity may be suppressed if their
    fraction does not exceed *max_suppression*.

    Raises ``ValueError`` when even full suppression-level recoding fails
    (cannot happen if every hierarchy tops out at ``"*"``).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    qi = list(hierarchies)
    budget = int(np.floor(max_suppression * data.n_rows))
    for levels in _lattice_nodes(hierarchies):
        recoded = apply_recoding(data, hierarchies, levels)
        bad = violating_indices(recoded, k, qi)
        if bad.size <= budget:
            released = recoded if bad.size == 0 else recoded.select(
                np.setdiff1d(np.arange(recoded.n_rows), bad)
            )
            generalized = sum(1 for lvl in levels.values() if lvl > 0)
            tele.counter("sdc.columns_generalized").inc(generalized)
            tele.counter("sdc.records_suppressed").inc(int(bad.size))
            return RecodingResult(levels, tuple(int(i) for i in bad), released)
    raise ValueError("no lattice node achieves k-anonymity within the budget")


class GlobalRecoding(MaskingMethod):
    """Masking method wrapper around :func:`minimal_generalization`."""

    def __init__(
        self,
        hierarchies: Mapping[str, Hierarchy],
        k: int,
        max_suppression: float = 0.05,
    ):
        self.hierarchies = dict(hierarchies)
        self.k = k
        self.max_suppression = max_suppression
        self.name = f"global-recoding(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        return minimal_generalization(
            data, self.hierarchies, self.k, self.max_suppression
        ).data
