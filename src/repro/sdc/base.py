"""Common interface for masking methods.

Every SDC / non-crypto-PPDM masking method transforms a
:class:`~repro.data.table.Dataset` into a protected release.  A uniform
interface lets the framework layer (:mod:`repro.core.scoring`) drive any
method through the three privacy meters without special-casing.
"""

from __future__ import annotations

import abc

import numpy as np

from ..data.table import Dataset


class MaskingMethod(abc.ABC):
    """A data-masking transform ``original -> protected release``.

    Subclasses must set :attr:`name` and implement :meth:`mask`.  Methods
    must not mutate the input dataset.
    """

    #: Human-readable method name used in reports and registries.
    name: str = "abstract"

    @abc.abstractmethod
    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        """Return a protected copy of *data*."""

    def __call__(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        return self.mask(data, rng=rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityMasking(MaskingMethod):
    """The no-op release: publish the original data unmasked.

    The paper's baseline (Section 2 opening): publishing without masking
    in general violates both respondent and owner privacy.
    """

    name = "identity"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        return data.copy()


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Accept a Generator, a seed, or None and return a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def quasi_identifier_columns(data: Dataset, columns=None) -> list[str]:
    """Resolve the columns a masking method should operate on.

    Defaults to the schema's quasi-identifiers; falls back to all numeric
    columns when the schema declares none.  Numeric target columns must be
    finite: a NaN would silently poison whole microaggregation groups, so
    it is rejected up front with a clear error.
    """
    if columns is not None:
        resolved = list(columns)
    else:
        qi = list(data.quasi_identifiers)
        resolved = qi if qi else list(data.numeric_columns())
    for name in resolved:
        if name in data and data.is_numeric(name):
            col = data.column(name)
            if col.size and not np.all(np.isfinite(col)):
                raise ValueError(
                    f"column {name!r} contains NaN/inf values; clean the "
                    "data before masking"
                )
    return resolved
