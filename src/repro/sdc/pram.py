"""PRAM — the Post-RAndomization Method for categorical attributes.

A staple of the SDC handbook the paper cites [17]: each categorical value
is stochastically replaced according to a published Markov transition
matrix P (``P[i][j] = Pr[released = v_j | original = v_i]``).  The
*invariant* variant chooses P with ``t P = t`` for the data's value
distribution t, so expected category frequencies are unchanged and many
tabular analyses stay valid without correction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, resolve_rng


@dataclass(frozen=True)
class TransitionMatrix:
    """A published PRAM transition matrix over an ordered value domain."""

    values: tuple[str, ...]
    matrix: np.ndarray

    def __post_init__(self):
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.shape != (len(self.values), len(self.values)):
            raise ValueError("matrix must be square over the value domain")
        if np.any(m < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        if not np.allclose(m.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("each row must sum to 1")
        object.__setattr__(self, "matrix", m)

    def index_of(self, value: str) -> int:
        """Domain index of *value*."""
        try:
            return self.values.index(str(value))
        except ValueError:
            raise KeyError(f"value {value!r} not in PRAM domain") from None

    def apply(self, column: Sequence, rng: np.random.Generator) -> np.ndarray:
        """Randomize *column* according to the matrix."""
        out = np.empty(len(column), dtype=object)
        for i, value in enumerate(column):
            row = self.matrix[self.index_of(value)]
            out[i] = self.values[int(rng.choice(len(self.values), p=row))]
        return out


def retention_matrix(values: Sequence[str], retention: float) -> TransitionMatrix:
    """The simplest PRAM matrix: keep with probability *retention*, else
    switch to a uniformly random other category."""
    if not 0.0 <= retention <= 1.0:
        raise ValueError("retention must be in [0, 1]")
    values = tuple(dict.fromkeys(str(v) for v in values))
    k = len(values)
    if k < 2:
        raise ValueError("PRAM needs at least two categories")
    off = (1.0 - retention) / (k - 1)
    matrix = np.full((k, k), off)
    np.fill_diagonal(matrix, retention)
    return TransitionMatrix(values, matrix)


def invariant_matrix(
    column: Sequence, retention: float = 0.8
) -> TransitionMatrix:
    """An invariant PRAM matrix for the empirical distribution of *column*.

    Construction (the standard two-step of Gouweleeuw et al.): start from
    the retention matrix R, form the Bayes back-flow matrix
    ``Q[i][j] = t_j R[j][i] / (t R)_i``, and return ``P = R Q``, which
    satisfies ``t P = t``:  (tP)_m = Σ_j (tR)_j Q[j][m]
    = Σ_j (tR)_j R[m][j] t_m / (tR)_j = t_m.
    """
    base = retention_matrix(sorted(set(str(v) for v in column)), retention)
    values = base.values
    t = np.array(
        [np.mean([str(v) == value for v in column]) for value in values]
    )
    if np.any(t == 0):
        raise ValueError("every domain value must occur in the column")
    tr = t @ base.matrix
    q = (base.matrix * t[:, None]).T / tr[:, None]
    p = base.matrix @ q
    return TransitionMatrix(values, p)


class Pram(MaskingMethod):
    """PRAM masking of categorical columns.

    Parameters
    ----------
    retention:
        Diagonal retention probability of the base matrix.
    columns:
        Categorical columns to randomize; defaults to every non-numeric
        column except those that look like identifiers (all-unique).
    invariant:
        Use the invariant construction (default) so expected category
        frequencies are preserved.
    """

    def __init__(
        self,
        retention: float = 0.8,
        columns: Sequence[str] | None = None,
        invariant: bool = True,
    ):
        if not 0.0 <= retention <= 1.0:
            raise ValueError("retention must be in [0, 1]")
        self.retention = retention
        self.columns = columns
        self.invariant = invariant
        self.matrices: dict[str, TransitionMatrix] = {}
        kind = "invariant" if invariant else "plain"
        self.name = f"pram({kind},r={retention:g})"

    def _target_columns(self, data: Dataset) -> list[str]:
        if self.columns is not None:
            return list(self.columns)
        targets = []
        for name in data.column_names:
            if data.is_numeric(name):
                continue
            distinct = len(set(data.column(name)))
            if 2 <= distinct < data.n_rows:  # skip constant & identifier-like
                targets.append(name)
        return targets

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        self.matrices = {}
        for name in self._target_columns(data):
            column = data.column(name)
            if self.invariant:
                matrix = invariant_matrix(column, self.retention)
            else:
                matrix = retention_matrix(
                    sorted(set(str(v) for v in column)), self.retention
                )
            self.matrices[name] = matrix
            out = out.with_column(name, matrix.apply(column, rng))
        return out


def unbiased_frequencies(
    released: Sequence, matrix: TransitionMatrix
) -> dict[str, float]:
    """Invert PRAM at the aggregate level: estimate original frequencies.

    Solves ``f_released = f_original P`` for ``f_original`` — the analyst's
    correction when a *non*-invariant matrix was used.
    """
    observed = np.array(
        [np.mean([str(v) == value for v in released]) for value in matrix.values]
    )
    estimated = np.linalg.solve(matrix.matrix.T, observed)
    return dict(zip(matrix.values, np.clip(estimated, 0.0, None)))
