"""Information-loss (data-utility) measures.

Section 6 of the paper poses "the impact on data utility of offering the
three dimensions of privacy" as the open research question; the ablation
benchmark ``bench_utility_ablation.py`` answers it with these measures:

* **IL1s** — mean per-cell absolute deviation scaled by each attribute's
  standard deviation (the standard SDC information-loss component).
* **Moment discrepancies** — how far means, variances, covariances and
  correlations of the masked file drift from the original (condensation
  [1] is designed to keep these near zero).
* **Quantile distortion** — average displacement of the deciles.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..telemetry import instrument as tele


def _common_numeric(original: Dataset, masked: Dataset,
                    columns: Sequence[str] | None) -> list[str]:
    if columns is not None:
        return list(columns)
    return [
        c for c in original.numeric_columns()
        if c in masked.column_names and masked.is_numeric(c)
    ]


def il1s(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None = None
) -> float:
    """Scaled per-cell absolute deviation (0 = identical release)."""
    columns = _common_numeric(original, masked, columns)
    if not columns:
        return 0.0
    if masked.n_rows != original.n_rows:
        raise ValueError("IL1s needs row-aligned datasets")
    x, y = original.matrix(columns), masked.matrix(columns)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    return float(np.mean(np.abs(x - y) / (np.sqrt(2.0) * std)))


def mean_discrepancy(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None = None
) -> float:
    """Mean absolute difference of attribute means, scaled by std."""
    columns = _common_numeric(original, masked, columns)
    if not columns:
        return 0.0
    x, y = original.matrix(columns), masked.matrix(columns)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    return float(np.mean(np.abs(x.mean(axis=0) - y.mean(axis=0)) / std))


def covariance_discrepancy(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None = None
) -> float:
    """Relative Frobenius distance between covariance matrices."""
    columns = _common_numeric(original, masked, columns)
    if len(columns) == 0:
        return 0.0
    x, y = original.matrix(columns), masked.matrix(columns)
    if x.shape[0] < 2 or y.shape[0] < 2:
        return 0.0
    cov_x = np.atleast_2d(np.cov(x, rowvar=False))
    cov_y = np.atleast_2d(np.cov(y, rowvar=False))
    denom = np.linalg.norm(cov_x)
    if denom == 0:
        return float(np.linalg.norm(cov_y))
    return float(np.linalg.norm(cov_x - cov_y) / denom)


def correlation_discrepancy(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None = None
) -> float:
    """Mean absolute difference between correlation matrices."""
    columns = _common_numeric(original, masked, columns)
    if len(columns) < 2:
        return 0.0
    x, y = original.matrix(columns), masked.matrix(columns)
    if x.shape[0] < 2 or y.shape[0] < 2:
        return 0.0
    with np.errstate(invalid="ignore"):
        corr_x = np.corrcoef(x, rowvar=False)
        corr_y = np.corrcoef(y, rowvar=False)
    corr_x = np.nan_to_num(corr_x)
    corr_y = np.nan_to_num(corr_y)
    mask = ~np.eye(len(columns), dtype=bool)
    return float(np.mean(np.abs(corr_x[mask] - corr_y[mask])))


def quantile_distortion(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None = None,
    deciles: int = 9,
) -> float:
    """Average scaled displacement of the deciles per attribute."""
    columns = _common_numeric(original, masked, columns)
    if not columns:
        return 0.0
    qs = np.linspace(0.1, 0.9, deciles)
    total = 0.0
    for name in columns:
        x, y = original.column(name), masked.column(name)
        std = x.std() if x.std() > 0 else 1.0
        total += float(np.mean(np.abs(
            np.quantile(x, qs) - np.quantile(y, qs)
        )) / std)
    return total / len(columns)


def distinguishability(
    original: Dataset,
    masked: Dataset,
    columns: Sequence[str] | None = None,
    seed: int = 0,
) -> float:
    """Propensity-style utility: can a classifier tell the files apart?

    Pools original and masked records with source labels, trains a
    Gaussian naive Bayes discriminator, and reports its held-out
    accuracy.  0.5 means the masked file is statistically
    indistinguishable from the original (ideal utility); values towards
    1.0 mean the masking visibly changed the distribution (the
    propensity-score idea of Woo, Reiter, Oganian and Karr).
    """
    from ..mining.metrics import accuracy, train_test_split_indices
    from ..mining.naive_bayes import GaussianNaiveBayes

    columns = _common_numeric(original, masked, columns)
    if not columns:
        return 0.5
    x = np.vstack([original.matrix(columns), masked.matrix(columns)])
    y = np.asarray(
        [0] * original.n_rows + [1] * masked.n_rows, dtype=object
    )
    tr, te = train_test_split_indices(x.shape[0], 0.3, seed)
    model = GaussianNaiveBayes().fit(x[tr], y[tr])
    score = accuracy(y[te], model.predict(x[te]))
    # Below-chance accuracy still signals distinguishability; fold it back.
    return max(score, 1.0 - score)


@dataclass(frozen=True)
class UtilityReport:
    """Bundle of information-loss measures for one release."""

    il1s: float
    mean_discrepancy: float
    covariance_discrepancy: float
    correlation_discrepancy: float
    quantile_distortion: float

    @property
    def utility_score(self) -> float:
        """A single utility figure in [0, 1] (1 = lossless).

        Exponential decay of the combined loss; only used for ranking
        releases, never as an absolute claim.
        """
        loss = (
            self.il1s
            + self.mean_discrepancy
            + self.covariance_discrepancy
            + self.correlation_discrepancy
            + self.quantile_distortion
        )
        return float(np.exp(-loss))


def assess_utility(
    original: Dataset, masked: Dataset, columns: Sequence[str] | None = None
) -> UtilityReport:
    """Run all information-loss measures and return a :class:`UtilityReport`.

    When the masked release dropped records (suppression), only the
    distributional measures are meaningful; IL1s is reported as NaN.
    """
    aligned = masked.n_rows == original.n_rows
    report = UtilityReport(
        il1s=il1s(original, masked, columns) if aligned else float("nan"),
        mean_discrepancy=mean_discrepancy(original, masked, columns),
        covariance_discrepancy=covariance_discrepancy(original, masked, columns),
        correlation_discrepancy=correlation_discrepancy(original, masked, columns),
        quantile_distortion=quantile_distortion(original, masked, columns),
    )
    if aligned:
        tele.gauge("sdc.il1s").set(report.il1s)
    return report
