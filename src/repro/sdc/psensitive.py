"""Enforcing p-sensitive k-anonymity (Truta–Vinay [24]).

:mod:`repro.sdc.diversity` *checks* the property; this module *achieves*
it: starting from a k-anonymous partition (e.g. MDAV groups), equivalence
classes whose confidential attributes take fewer than p distinct values
are greedily merged with their nearest neighbouring class until every
class is both >= k in size and p-diverse on every confidential attribute.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns
from .microaggregation import mdav_groups


def _distinct_counts(
    data: Dataset, confidential: Sequence[str], indices: np.ndarray
) -> int:
    return min(
        len({data.column(attr)[i] for i in indices}) for attr in confidential
    )


def merge_to_p_sensitive(
    data: Dataset,
    groups: list[np.ndarray],
    confidential: Sequence[str],
    p: int,
    matrix: np.ndarray,
) -> list[np.ndarray]:
    """Greedily merge *groups* until each is p-diverse.

    ``matrix`` holds the (standardized) quasi-identifier coordinates used
    to pick the nearest neighbouring group for each deficient one.
    Raises ``ValueError`` when the whole dataset cannot support p distinct
    values for some confidential attribute.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    whole = np.arange(matrix.shape[0], dtype=np.intp)
    if _distinct_counts(data, confidential, whole) < p:
        raise ValueError(
            "the dataset has fewer than p distinct values of some "
            "confidential attribute; p-sensitivity is unachievable"
        )
    groups = [np.asarray(g, dtype=np.intp) for g in groups]
    while True:
        deficient = [
            gi for gi, g in enumerate(groups)
            if _distinct_counts(data, confidential, g) < p
        ]
        if not deficient:
            return groups
        if len(groups) == 1:
            return groups  # diverse by the whole-dataset precondition
        gi = deficient[0]
        centroid = matrix[groups[gi]].mean(axis=0)
        best, best_d = None, np.inf
        for gj, other in enumerate(groups):
            if gj == gi:
                continue
            d = float(np.linalg.norm(matrix[other].mean(axis=0) - centroid))
            if d < best_d:
                best, best_d = gj, d
        merged = np.concatenate([groups[gi], groups[best]])
        groups = [
            g for gj, g in enumerate(groups) if gj not in (gi, best)
        ] + [merged]


class PSensitiveMicroaggregation(MaskingMethod):
    """Microaggregation whose release is p-sensitive k-anonymous.

    MDAV builds size->=k groups on the quasi-identifiers; groups that are
    homogeneous on a confidential attribute are merged with neighbours
    until every class shows at least p distinct values of every
    confidential attribute (footnote 3 of the paper), and quasi-identifier
    values are then replaced by group centroids.
    """

    def __init__(
        self,
        k: int,
        p: int,
        columns: Sequence[str] | None = None,
        confidential: Sequence[str] | None = None,
    ):
        if k < 1 or p < 1:
            raise ValueError("k and p must be >= 1")
        self.k = k
        self.p = p
        self.columns = columns
        self.confidential = confidential
        self.name = f"p-sensitive-microaggregation(k={k},p={p})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        confidential = (
            list(self.confidential)
            if self.confidential is not None
            else list(data.confidential_attributes)
        )
        if not columns:
            return data.copy()
        if not confidential:
            raise ValueError("no confidential attributes specified or in schema")
        matrix = data.matrix(columns)
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        normalized = (matrix - matrix.mean(axis=0)) / std
        groups = mdav_groups(matrix, self.k)
        groups = merge_to_p_sensitive(
            data, groups, confidential, self.p, normalized
        )
        masked = matrix.copy()
        for group in groups:
            masked[group] = matrix[group].mean(axis=0)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, masked[:, j])
        return out
