"""Mondrian multidimensional k-anonymization.

A greedy top-down partitioner in the style of LeFevre et al., standing in
for the k-anonymization algorithms of Aggarwal et al. [2] that the paper
cites as "generic" k-anonymizers: recursively split the record set on the
median of the widest-normalized-range quasi-identifier while both halves
keep at least k records, then publish each leaf's records with the leaf's
attribute ranges (numeric columns are replaced by the leaf mean; an
auxiliary ``<col>__range`` label can be requested for the interval view).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns


def mondrian_partition(matrix: np.ndarray, k: int) -> list[np.ndarray]:
    """Recursively split row indices so every leaf has >= k rows."""
    n, dims = matrix.shape
    if k < 1:
        raise ValueError("k must be >= 1")
    spans = matrix.max(axis=0) - matrix.min(axis=0) if n else np.zeros(dims)
    scale = np.where(spans > 0, spans, 1.0)

    def split(indices: np.ndarray) -> list[np.ndarray]:
        if indices.size < 2 * k:
            return [indices]
        block = matrix[indices]
        widths = (block.max(axis=0) - block.min(axis=0)) / scale
        for dim in np.argsort(widths)[::-1]:
            if widths[dim] <= 0:
                break
            median = np.median(block[:, dim])
            left = indices[block[:, dim] <= median]
            right = indices[block[:, dim] > median]
            if left.size >= k and right.size >= k:
                return split(left) + split(right)
            # Median ties can make one side empty; try a strict split.
            left = indices[block[:, dim] < median]
            right = indices[block[:, dim] >= median]
            if left.size >= k and right.size >= k:
                return split(left) + split(right)
        return [indices]

    return split(np.arange(n, dtype=np.intp))


class MondrianKAnonymizer(MaskingMethod):
    """k-Anonymize numeric quasi-identifiers with Mondrian partitioning.

    Each leaf's quasi-identifier values are replaced by the leaf centroid,
    so all records in a leaf become indistinguishable — the release is
    k-anonymous on those columns.
    """

    def __init__(self, k: int, columns: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.columns = columns
        self.name = f"mondrian(k={k})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns:
            return data.copy()
        matrix = data.matrix(columns)
        masked = matrix.copy()
        for leaf in mondrian_partition(matrix, self.k):
            if leaf.size:
                masked[leaf] = matrix[leaf].mean(axis=0)
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, masked[:, j])
        return out
