"""Coarsening masks: top/bottom coding and rounding.

Two more masking methods from the SDC handbook [17] the paper builds on:

* **top/bottom coding** — extreme values (the most identifying ones: the
  tallest patient, the highest income) are truncated to a threshold;
* **rounding** — values are snapped to a public rounding base, collapsing
  near-neighbours into identical published values.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns


class TopBottomCoding(MaskingMethod):
    """Truncate each numeric quasi-identifier to central quantiles.

    Values above the ``1 - tail`` quantile are set to that quantile, and
    symmetrically below the ``tail`` quantile — removing exactly the
    outliers a linkage intruder finds easiest to re-identify.
    """

    def __init__(self, tail: float = 0.05, columns: Sequence[str] | None = None):
        if not 0.0 < tail < 0.5:
            raise ValueError("tail must be in (0, 0.5)")
        self.tail = float(tail)
        self.columns = columns
        self.name = f"top-bottom-coding(tail={tail:g})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        out = data.copy()
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            col = data.column(name)
            if col.size == 0:
                continue
            lo = float(np.quantile(col, self.tail))
            hi = float(np.quantile(col, 1.0 - self.tail))
            out = out.with_column(name, np.clip(col, lo, hi))
        return out


class Rounding(MaskingMethod):
    """Round numeric quasi-identifiers to a public base per column.

    The base defaults to ``base_fraction`` of the column's standard
    deviation, so coarseness adapts to each attribute's scale.
    """

    def __init__(
        self,
        base_fraction: float = 0.5,
        columns: Sequence[str] | None = None,
        bases: dict[str, float] | None = None,
    ):
        if base_fraction <= 0:
            raise ValueError("base_fraction must be positive")
        self.base_fraction = float(base_fraction)
        self.columns = columns
        self.bases = dict(bases or {})
        self.name = f"rounding(base={base_fraction:g}sd)"

    def base_for(self, data: Dataset, name: str) -> float:
        """The rounding base used for column *name*."""
        if name in self.bases:
            return self.bases[name]
        sd = data.column(name).std()
        return self.base_fraction * (sd if sd > 0 else 1.0)

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        del rng  # deterministic
        out = data.copy()
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            col = data.column(name)
            base = self.base_for(data, name)
            out = out.with_column(name, np.round(col / base) * base)
        return out
