"""Noise-addition masking.

Three classical variants:

* :class:`UncorrelatedNoise` — independent Gaussian noise per attribute
  with variance proportional to the attribute variance (the scheme of
  Agrawal–Srikant [5] uses this with a *known* noise distribution so the
  original distribution can be reconstructed; see
  :mod:`repro.ppdm.randomization`).
* :class:`CorrelatedNoise` — noise drawn with the same correlation
  structure as the data (Kim's method), preserving correlations of the
  masked file.
* :class:`LaplaceNoise` — heavy-tailed alternative used by the
  output-perturbation SDC strategies for interactive databases [14].

The paper's Section 2 ("a subtler example") relies on the result of [11]:
for high-dimensional sparse data, the reconstructable noise of [5] fails to
protect respondents even though it protects the owner.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.table import Dataset
from .base import MaskingMethod, quasi_identifier_columns, resolve_rng


class UncorrelatedNoise(MaskingMethod):
    """Add independent Gaussian noise to each numeric quasi-identifier.

    Parameters
    ----------
    relative_sd:
        Noise standard deviation as a fraction of each attribute's standard
        deviation (``sd_noise = relative_sd * sd_attribute``).
    columns:
        Columns to perturb; defaults to the schema's quasi-identifiers.
    """

    def __init__(self, relative_sd: float = 0.5, columns: Sequence[str] | None = None):
        if relative_sd < 0:
            raise ValueError("relative_sd must be non-negative")
        self.relative_sd = float(relative_sd)
        self.columns = columns
        self.name = f"noise(sd={relative_sd:g})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            col = data.column(name)
            if col.size == 0:
                continue
            scale = self.relative_sd * (col.std() if col.std() > 0 else 1.0)
            out = out.with_column(name, col + rng.normal(0.0, scale, col.shape))
        return out


class CorrelatedNoise(MaskingMethod):
    """Add noise with the same covariance structure as the data.

    The noise covariance is ``alpha * Sigma`` where ``Sigma`` is the sample
    covariance of the selected columns, so the masked file's correlation
    matrix matches the original in expectation.
    """

    def __init__(self, alpha: float = 0.25, columns: Sequence[str] | None = None):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.columns = columns
        self.name = f"corr-noise(alpha={alpha:g})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        columns = [
            c for c in quasi_identifier_columns(data, self.columns)
            if data.is_numeric(c)
        ]
        if not columns:
            return data.copy()
        matrix = data.matrix(columns)
        if matrix.shape[0] < 2 or self.alpha == 0:
            return data.copy()
        sigma = np.atleast_2d(np.cov(matrix, rowvar=False))
        noise = rng.multivariate_normal(
            np.zeros(len(columns)), self.alpha * sigma + 1e-12 * np.eye(len(columns)),
            size=matrix.shape[0], method="svd",
        )
        masked = matrix + noise
        out = data.copy()
        for j, name in enumerate(columns):
            out = out.with_column(name, masked[:, j])
        return out


class MultiplicativeNoise(MaskingMethod):
    """Multiplicative noise masking: x -> x * (1 + e), e ~ N(0, sd²).

    The handbook's [17] alternative for skewed positive attributes
    (income): perturbation scales with the value itself, so large
    (identifying) values receive proportionally large distortion.
    """

    def __init__(self, relative_sd: float = 0.1, columns: Sequence[str] | None = None):
        if relative_sd < 0:
            raise ValueError("relative_sd must be non-negative")
        self.relative_sd = float(relative_sd)
        self.columns = columns
        self.name = f"mult-noise(sd={relative_sd:g})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            col = data.column(name)
            factors = 1.0 + rng.normal(0.0, self.relative_sd, col.shape)
            out = out.with_column(name, col * factors)
        return out


class LaplaceNoise(MaskingMethod):
    """Add independent Laplace noise (scale relative to attribute spread)."""

    def __init__(self, relative_scale: float = 0.3, columns: Sequence[str] | None = None):
        if relative_scale < 0:
            raise ValueError("relative_scale must be non-negative")
        self.relative_scale = float(relative_scale)
        self.columns = columns
        self.name = f"laplace(b={relative_scale:g})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            col = data.column(name)
            scale = self.relative_scale * (col.std() if col.std() > 0 else 1.0)
            out = out.with_column(name, col + rng.laplace(0.0, scale, col.shape))
        return out
