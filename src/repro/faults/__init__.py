"""Fault tolerance and graceful degradation for the privacy runtime.

The paper's guarantees are stated for perfect servers and lossless
parties; this package is what makes them survive the production world
the ROADMAP targets — byzantine PIR replicas, crashed SMC parties, and
storage backends that lose replicas mid-session:

* :mod:`~repro.faults.plan` — deterministic, seedable fault injection
  (drop / delay / corrupt-bits / byzantine-answer / crash-after-k).
* :mod:`~repro.faults.retry` — timeout + exponential backoff over
  simulated time, and the telemetry hook every degradation decision
  flows through.
* :mod:`~repro.faults.pir` — :class:`ResilientXorPIR`: ``2f + 1``
  replica groups with majority-vote reconciliation (tolerates any ``f``
  byzantine or crashed replicas).
* :mod:`~repro.faults.smc` — :class:`FaultyChannel` and
  :func:`resilient_secure_sum` (ring protocol with retries, falling back
  to additive shares among survivors).
* :mod:`~repro.faults.backend` — :class:`ReplicatedBackend`: qdb column
  reads with per-read replica failover; total loss surfaces as a typed
  ``Refusal`` from the engine instead of an exception.
* :mod:`~repro.faults.chaos` — the scripted ``repro faults chaos``
  scenario asserting the privacy invariants under injected failures.

Import layering: the exception and plan layers are dependency-light and
imported eagerly (the qdb engine catches
:class:`~repro.faults.errors.BackendUnavailable` at import time); the
subsystem wrappers are loaded lazily on first attribute access so this
package never drags pir/smc/qdb into an import cycle.
"""

from .errors import (
    BackendUnavailable,
    ChaosError,
    FaultError,
    MessageDropped,
    PIRUnavailableError,
    PartyCrashed,
    QuorumLostError,
)
from .plan import FAULT_KINDS, Fault, FaultOutcome, FaultPlan, random_fault_plan
from .retry import (
    DEFAULT_RETRY,
    DeliveryResult,
    RetryPolicy,
    emit_decision,
    resolve_delivery,
)

__all__ = [
    "BackendUnavailable",
    "ChaosError",
    "DEFAULT_RETRY",
    "DeliveryResult",
    "FAULT_KINDS",
    "Fault",
    "FaultError",
    "FaultOutcome",
    "FaultPlan",
    "FaultyChannel",
    "FaultyServer",
    "MessageDropped",
    "PIRUnavailableError",
    "PartyCrashed",
    "QuorumLostError",
    "ReplicatedBackend",
    "ResilientXorPIR",
    "RetrievalReport",
    "RetryPolicy",
    "SumOutcome",
    "emit_decision",
    "random_fault_plan",
    "resilient_secure_sum",
    "resolve_delivery",
    "run_chaos",
    "wrap_servers",
]

_LAZY = {
    "FaultyServer": ("pir", "FaultyServer"),
    "ResilientXorPIR": ("pir", "ResilientXorPIR"),
    "RetrievalReport": ("pir", "RetrievalReport"),
    "wrap_servers": ("pir", "wrap_servers"),
    "FaultyChannel": ("smc", "FaultyChannel"),
    "SumOutcome": ("smc", "SumOutcome"),
    "resilient_secure_sum": ("smc", "resilient_secure_sum"),
    "ReplicatedBackend": ("backend", "ReplicatedBackend"),
    "run_chaos": ("chaos", "run_chaos"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
