"""Byzantine-tolerant PIR: replica groups, retries, majority voting.

XOR-based IT-PIR has *zero* answer redundancy: the target block is the
XOR of all server answers, so a single lying server flips the result
silently (``tests/test_failure_injection.py`` demonstrates this on the
raw scheme).  :class:`ResilientXorPIR` restores integrity the classical
way — replication plus voting:

* the client runs ``2f + 1`` *independent replica groups*, each a full
  instance of the underlying XOR scheme over the same block database
  (fresh query randomness per group, so no server appears in two groups);
* each group reconstructs a candidate block; candidates pass through the
  :class:`~repro.faults.plan.FaultPlan` (the group is the fault target,
  modelling a whole byzantine or crashed replica site);
* a candidate wins when at least ``f + 1`` groups agree bit-for-bit —
  any ``f`` byzantine or crashed groups are outvoted or ignored.

Privacy is per-group and unchanged: every group sees the scheme's usual
uniformly random query sets, and groups share no servers, so the
replication adds bandwidth, not leakage.  Integrity is what voting buys.

When quorum is lost (more than ``f`` groups failed) the client either
raises :class:`~repro.faults.errors.QuorumLostError` (the default) or —
only when constructed with ``allow_degraded=True`` — falls back to the
first surviving answer.  That fallback trusts a single replica, so both
integrity and the multi-server trust assumption are weakened; it is
therefore an explicit policy decision, and every occurrence is logged to
telemetry as a ``faults.degrade`` span.

:class:`FaultyServer` wraps one raw scheme *server* instead, for
demonstrating what the resilient layer protects against.

>>> from repro.faults.plan import Fault, FaultPlan
>>> plan = FaultPlan([Fault("byzantine", "pir.replica:0")], seed=3)
>>> pir = ResilientXorPIR([b"alpha---", b"beta----", b"gamma---"],
...                       f=1, plan=plan)
>>> pir.retrieve(1, rng=0)        # the lying replica is outvoted 2-to-1
b'beta----'
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..pir.itpir import (
    MultiServerXorPIR,
    PIRAnswer,
    SquareSchemePIR,
    TwoServerXorPIR,
)
from ..sdc.base import resolve_rng
from ..telemetry import instrument as tele
from ..telemetry.registry import MetricsRegistry
from .errors import PIRUnavailableError, QuorumLostError
from .plan import FaultPlan
from .retry import DEFAULT_RETRY, RetryPolicy, emit_decision, resolve_delivery

__all__ = ["FaultyServer", "ResilientXorPIR", "RetrievalReport",
           "wrap_servers"]

#: Salt for retry re-query randomness (batch-shape independent).
_RETRY_SALT = 0x52455452  # "RETR"

_SCHEMES = {
    "two-server": lambda blocks, n_servers: TwoServerXorPIR(blocks),
    "multi-server": lambda blocks, n_servers: MultiServerXorPIR(
        blocks, n_servers=n_servers
    ),
    "square": lambda blocks, n_servers: SquareSchemePIR(blocks),
}


@dataclass(frozen=True)
class RetrievalReport:
    """Per-block forensics for the most recent resilient retrieval.

    One report per requested block, exposed as
    ``ResilientXorPIR.last_reports`` after every retrieval — the
    auditable record of *how* the answer was produced: how many
    replicas agreed (``votes``) versus delivered (``delivered``), how
    many delivered candidates lost the vote (``outvoted`` — nonzero
    means a byzantine or corrupted answer was observed and outvoted,
    not silently accepted), and what the fault riding cost in
    ``retries`` / ``timeouts`` / ``simulated_seconds``.  ``degraded``
    marks blocks served by the single-replica fallback, i.e. *without*
    byzantine protection — the caller sees the weakened integrity
    guarantee explicitly rather than inferring it from latency.
    """

    index: int
    votes: int            # replicas agreeing on the accepted block
    delivered: int        # replicas that delivered any candidate
    outvoted: int         # delivered candidates that disagreed
    retries: int          # re-queries beyond the first attempt
    timeouts: int         # attempts that hit the deadline
    degraded: bool        # True when served by single-replica fallback
    simulated_seconds: float


class ResilientXorPIR:
    """Majority-vote front-end over ``2f + 1`` XOR-PIR replica groups.

    Threat model: up to ``f`` replica groups may be byzantine (answer
    arbitrarily wrongly), crashed, or arbitrarily slow, in any mix; the
    remaining ``f + 1`` honest groups guarantee a correct, bit-identical
    answer.  Per-group query privacy is exactly the wrapped scheme's
    (non-collusion within each group's server set).

    Failure behaviour: more than ``f`` failed groups raises
    :class:`QuorumLostError` — or, with ``allow_degraded=True``, returns
    the first surviving answer and logs a ``single-replica-fallback``
    degradation decision to telemetry.  No surviving answer at all raises
    :class:`PIRUnavailableError`.

    Parameters
    ----------
    blocks:
        The block database, as for the wrapped schemes.
    f:
        Byzantine/crash failures to tolerate; ``2f + 1`` groups are built.
    scheme:
        ``"two-server"`` (default), ``"multi-server"``, or ``"square"``.
    n_servers:
        Servers per group for the multi-server scheme.
    plan:
        The :class:`FaultPlan` injecting failures (targets
        ``"<name>.replica:<g>"``); an empty plan by default.
    retry:
        The :class:`RetryPolicy` for per-replica delivery.
    allow_degraded:
        Opt-in to the degraded single-replica fallback (see above).
    name:
        Target-name prefix, so several instances can share one plan.
    """

    def __init__(self, blocks: Sequence[bytes | int], f: int = 1,
                 scheme: str = "two-server", n_servers: int = 3,
                 plan: FaultPlan | None = None,
                 retry: RetryPolicy = DEFAULT_RETRY,
                 allow_degraded: bool = False,
                 name: str = "pir"):
        if f < 0:
            raise ValueError("f must be >= 0")
        if scheme not in _SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(_SCHEMES)}"
            )
        self.f = int(f)
        self.n_replicas = 2 * self.f + 1
        self.scheme = scheme
        self.plan = plan if plan is not None else FaultPlan()
        self.retry = retry
        self.allow_degraded = bool(allow_degraded)
        self.name = name
        factory = _SCHEMES[scheme]
        self._replicas = tuple(
            factory(blocks, n_servers) for _ in range(self.n_replicas)
        )
        self.n = self._replicas[0].n
        self.block_size = self._replicas[0].block_size
        self.last_reports: list[RetrievalReport] = []
        self.metrics = MetricsRegistry(owner="faults.pir")
        self._c_requests = self.metrics.counter("faults.pir.replica_requests")
        self._c_retrievals = self.metrics.counter("faults.pir.retrievals")
        self._c_retries = self.metrics.counter("faults.pir.retries")
        self._c_timeouts = self.metrics.counter("faults.pir.timeouts")
        self._c_outvoted = self.metrics.counter("faults.pir.outvoted_answers")
        self._c_quorum_lost = self.metrics.counter("faults.pir.quorum_lost")
        self._c_degraded = self.metrics.counter(
            "faults.pir.degraded_retrievals"
        )

    def _target(self, group: int) -> str:
        return f"{self.name}.replica:{group}"

    # ------------------------------------------------------------------
    # Accounting read-throughs (summed over replica groups)
    # ------------------------------------------------------------------
    @property
    def upstream_bits(self) -> int:
        """Client-to-server bits across every replica group."""
        return sum(r.upstream_bits for r in self._replicas)

    @property
    def downstream_bits(self) -> int:
        """Server-to-client bits across every replica group."""
        return sum(r.downstream_bits for r in self._replicas)

    @property
    def retrievals(self) -> int:
        """Logical block retrievals served (not per-replica requests)."""
        return self._c_retrievals.value

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieve(self, index: int,
                 rng: np.random.Generator | int | None = None) -> bytes:
        """Privately retrieve block *index* with byzantine tolerance f."""
        return self.retrieve_batch([index], rng)[0]

    def retrieve_int(self, index: int,
                     rng: np.random.Generator | int | None = None) -> int:
        """Resilient retrieval decoded as a signed big-endian integer."""
        return int.from_bytes(self.retrieve(index, rng), "big", signed=True)

    def retrieve_batch(self, indices: Sequence[int],
                       rng: np.random.Generator | int | None = None,
                       ) -> list[bytes]:
        """Resilient batched retrieval.

        Observes the same plan faults — and returns the same bytes — as
        the equivalent sequence of :meth:`retrieve` calls under the same
        plan state, because fault decisions key on per-target operation
        indices, not arrival order.
        """
        idx = [int(i) for i in indices]
        if not idx:
            return []
        if not tele.enabled():
            return self._retrieve_many(idx, rng)
        with tele.span("faults.pir.retrieve_batch", scheme=self.scheme,
                       f=self.f, n=self.n, n_queries=len(idx)) as span:
            blocks = self._retrieve_many(idx, rng)
            span.set("retries", sum(r.retries for r in self.last_reports))
            span.set("degraded",
                     sum(r.degraded for r in self.last_reports))
        return blocks

    def retrieve_batch_int(self, indices: Sequence[int],
                           rng: np.random.Generator | int | None = None,
                           ) -> list[int]:
        """Batched resilient retrieval decoded as signed integers."""
        return [int.from_bytes(b, "big", signed=True)
                for b in self.retrieve_batch(indices, rng)]

    def _retrieve_many(self, idx: list[int],
                       rng: np.random.Generator | int | None) -> list[bytes]:
        batch = len(idx)
        rng = resolve_rng(rng)
        bases = [self.plan.take_ops(self._target(g), batch)
                 for g in range(self.n_replicas)]
        raw = [replica._retrieve_many(idx, rng) for replica in self._replicas]
        self._c_requests.inc(batch * self.n_replicas)
        self._c_retrievals.inc(batch)
        if all(not self.plan.has_faults(self._target(g))
               for g in range(self.n_replicas)):
            # No faults configured for any group: all candidates are the
            # honest block; skip per-row delivery resolution and voting.
            self.last_reports = [
                RetrievalReport(i, self.n_replicas, self.n_replicas,
                                0, 0, 0, False, 0.0)
                for i in idx
            ]
            return list(raw[0])
        candidates: list[list[bytes | None]] = [
            [None] * self.n_replicas for _ in range(batch)
        ]
        retries = [0] * batch
        timeouts = [0] * batch
        simulated = [0.0] * batch
        for g, replica in enumerate(self._replicas):
            target = self._target(g)
            for j in range(batch):
                op = bases[g] + j
                result = resolve_delivery(self.plan, target, op, self.retry)
                retries[j] += result.attempts - 1
                timeouts[j] += result.timeouts
                simulated[j] = max(simulated[j], result.simulated_seconds)
                if result.outcome is None:
                    continue
                if result.attempts == 1:
                    payload = raw[g][j]
                else:
                    # The retried request re-queries this group with fresh
                    # masks derived from the plan key, so the payload is
                    # identical whether the caller batched or looped.
                    payload = replica._retrieve_one(
                        idx[j],
                        self.plan.rng(target, op, result.attempts - 1,
                                      salt=_RETRY_SALT),
                    )
                    self._c_requests.inc()
                candidates[j][g] = result.outcome.apply_bytes(payload)
        self._c_retries.inc(sum(retries))
        self._c_timeouts.inc(sum(timeouts))
        blocks = []
        reports = []
        for j in range(batch):
            block, report = self._reconcile(
                idx[j], candidates[j], retries[j], timeouts[j], simulated[j]
            )
            blocks.append(block)
            reports.append(report)
        self.last_reports = reports
        return blocks

    def _reconcile(self, index: int, candidates: list[bytes | None],
                   retries: int, timeouts: int,
                   simulated: float) -> tuple[bytes, RetrievalReport]:
        """Majority vote over one block's delivered candidates."""
        delivered = [c for c in candidates if c is not None]
        counts: dict[bytes, int] = {}
        for candidate in delivered:
            counts[candidate] = counts.get(candidate, 0) + 1
        best = max(counts, key=counts.get) if counts else b""
        votes = counts.get(best, 0)
        if votes >= self.f + 1:
            outvoted = len(delivered) - votes
            if outvoted:
                self._c_outvoted.inc(outvoted)
            return best, RetrievalReport(
                index, votes, len(delivered), outvoted, retries, timeouts,
                False, simulated,
            )
        self._c_quorum_lost.inc()
        detail = (f"{len(delivered)}/{self.n_replicas} replicas delivered, "
                  f"top agreement {votes} < required {self.f + 1}")
        if not delivered:
            emit_decision("pir", "unavailable", detail, index=index)
            raise PIRUnavailableError(
                f"no PIR replica answered for block {index}: {detail}"
            )
        if not self.allow_degraded:
            raise QuorumLostError(
                f"PIR quorum lost for block {index}: {detail}"
            )
        self._c_degraded.inc()
        emit_decision("pir", "single-replica-fallback", detail, index=index)
        return delivered[0], RetrievalReport(
            index, votes, len(delivered), len(delivered) - votes,
            retries, timeouts, True, simulated,
        )


class FaultyServer:
    """Wrap one raw XOR-scheme server with plan-driven faults.

    This is the *anti*-demonstration: injecting at server granularity
    inside a raw scheme shows the scheme's documented lack of integrity
    (a single corrupted answer silently corrupts the XOR reconstruction),
    which is exactly what :class:`ResilientXorPIR`'s replica-group voting
    exists to fix.  Crash/drop outcomes raise
    :class:`~repro.faults.errors.PIRUnavailableError` since a raw scheme
    cannot reconstruct anything with a server missing.
    """

    def __init__(self, inner, target: str, plan: FaultPlan):
        self._inner = inner
        self.target = target
        self.plan = plan

    def answer(self, server_id: int, indices) -> PIRAnswer:
        """The wrapped server's answer, mutated by the plan."""
        outcome = self.plan.outcome(self.target)
        reply = self._inner.answer(server_id, indices)
        if not outcome.delivered:
            raise PIRUnavailableError(
                f"server {self.target} did not answer operation {outcome.op}"
            )
        payload = outcome.apply_bytes(reply.payload)
        return PIRAnswer(reply.server, reply.query_indices, payload)

    def answer_batch(self, masks: np.ndarray) -> np.ndarray:
        """Batched answers with per-row fault outcomes (op per row)."""
        base = self.plan.take_ops(self.target, int(masks.shape[0]))
        answers = self._inner.answer_batch(masks)
        rows = []
        for j in range(answers.shape[0]):
            outcome = self.plan.outcome(self.target, base + j)
            if not outcome.delivered:
                raise PIRUnavailableError(
                    f"server {self.target} did not answer operation "
                    f"{outcome.op}"
                )
            mutated = outcome.apply_bytes(answers[j].tobytes())
            rows.append(np.frombuffer(mutated, dtype=np.uint8))
        return np.stack(rows)


def wrap_servers(scheme, plan: FaultPlan, prefix: str = "pir.server"):
    """Wrap every server of a raw XOR scheme with :class:`FaultyServer`.

    Only schemes that expose ``_servers`` (two-server, multi-server) can
    be wrapped; the square scheme answers internally.  Returns *scheme*.
    """
    servers = getattr(scheme, "_servers", None)
    if servers is None:
        raise TypeError(
            f"{type(scheme).__name__} does not expose per-server answering"
        )
    scheme._servers = tuple(
        FaultyServer(server, f"{prefix}:{i}", plan)
        for i, server in enumerate(servers)
    )
    return scheme
