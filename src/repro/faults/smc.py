"""Fault-tolerant secure multiparty computation.

:class:`FaultyChannel` injects a :class:`~repro.faults.plan.FaultPlan`
into any protocol that routes messages through a
:class:`~repro.smc.party.Channel`: per-message drop/delay/corrupt/
byzantine outcomes keyed on the *sender* (target ``"smc.party:<name>"``),
and sticky crash-after-k-messages semantics (the plan's per-target op
counter counts messages the party has sent — once ``op >= after`` the
party never speaks again).

:func:`resilient_secure_sum` is the recovery driver: it retries the ring
protocol across transient faults, and when a party has *crashed* it falls
back to the additive-shares protocol over the surviving parties — an
explicit, telemetry-logged degradation, because the fallback changes the
computed statistic (the crashed party's value is excluded) and shrinks
the collusion margin around the survivors.

>>> from repro.faults.plan import Fault, FaultPlan
>>> plan = FaultPlan([Fault("crash", "smc.party:P1", after=0)], seed=2)
>>> outcome = resilient_secure_sum([3, 5, 9, 4], plan=plan, rng=0)
>>> outcome.degraded, sorted(outcome.excluded), outcome.value
(True, ['P1'], 16)
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..smc.party import Channel, Transcript
from ..smc.secure_sum import (
    DEFAULT_MODULUS,
    resolve_protocol_rng,
    ring_secure_sum,
    shares_secure_sum,
)
from ..telemetry.registry import MetricsRegistry
from .errors import FaultError, MessageDropped, PartyCrashed
from .plan import FaultPlan
from .retry import DEFAULT_RETRY, RetryPolicy, emit_decision

__all__ = ["FaultyChannel", "SumOutcome", "resilient_secure_sum"]


class FaultyChannel(Channel):
    """A channel that applies plan faults to every message it carries.

    Threat model: the wire (and crashed endpoints), not the protocol —
    parties follow the protocol; the channel drops, delays, corrupts, or
    byzantine-replaces what they say.  Failure behaviour: crash and drop
    raise (:class:`PartyCrashed` is sticky, :class:`MessageDropped` is
    transient); corrupt/byzantine deliver a *wrong* payload, which the
    caller cannot detect — exactly the failure the chaos scenario's
    exposure invariant checks against.

    Integer payloads are mutated modulo *modulus*; other payloads pass
    through unmodified (the secure-sum protocols speak integers).
    """

    def __init__(self, plan: FaultPlan,
                 transcript: Transcript | None = None,
                 attempt: int = 0,
                 modulus: int = DEFAULT_MODULUS,
                 excluded: frozenset[str] = frozenset()):
        super().__init__(transcript)
        self.plan = plan
        self.attempt = int(attempt)
        self.modulus = modulus
        self.excluded = excluded
        self.simulated_seconds = 0.0
        self.metrics = MetricsRegistry(owner="faults.smc")
        self._c_delivered = self.metrics.counter("faults.smc.delivered")
        self._c_dropped = self.metrics.counter("faults.smc.dropped")
        self._c_crashes = self.metrics.counter("faults.smc.crash_hits")
        self._c_corrupted = self.metrics.counter("faults.smc.corrupted")

    @staticmethod
    def target_for(party: str) -> str:
        """The plan target name for a party (fault key = sender)."""
        return f"smc.party:{party}"

    def send(self, sender: str, receiver: str, tag: str,
             payload: object) -> object:
        """Deliver one message through the plan; faults key on the sender."""
        if sender in self.excluded or receiver in self.excluded:
            raise PartyCrashed(sender if sender in self.excluded else receiver,
                               -1)
        target = self.target_for(sender)
        outcome = self.plan.outcome(target, attempt=self.attempt)
        if outcome.crashed:
            self._c_crashes.inc()
            raise PartyCrashed(sender, outcome.op)
        if outcome.dropped:
            self._c_dropped.inc()
            raise MessageDropped(sender, receiver, outcome.op)
        self.simulated_seconds += outcome.latency
        if isinstance(payload, int) and not isinstance(payload, bool):
            delivered = outcome.apply_int(payload, self.modulus)
        else:
            delivered = payload
        if outcome.corrupts:
            self._c_corrupted.inc()
        self._c_delivered.inc()
        self.transcript.record(sender, receiver, tag, delivered)
        return delivered


@dataclass(frozen=True)
class SumOutcome:
    """What :func:`resilient_secure_sum` computed, and how.

    ``degraded`` means the fallback ran: ``value`` is the sum over the
    *surviving* parties only (``excluded`` lists the crashed ones) and
    ``protocol`` is ``"shares-sum"`` instead of ``"ring-sum"``.
    """

    value: int
    protocol: str
    degraded: bool
    excluded: tuple[str, ...]
    attempts: int
    simulated_seconds: float


def resilient_secure_sum(
    values: Sequence[int],
    plan: FaultPlan | None = None,
    retry: RetryPolicy = DEFAULT_RETRY,
    modulus: int = DEFAULT_MODULUS,
    rng=None,
    transcript: Transcript | None = None,
) -> SumOutcome:
    """Secure sum that survives dropped messages and crashed parties.

    Strategy: run the ring protocol through a :class:`FaultyChannel`,
    retrying up to ``retry.max_attempts`` times on any failure (drops are
    transient; each retry advances the attempt key, and crash counters
    advance with every message, so a crash-after-k party eventually stays
    down).  If a party has crashed, fall back to the additive-shares
    protocol over the surviving parties — logged via
    :func:`~repro.faults.retry.emit_decision` as an ``smc``
    ``exclude-crashed-parties`` decision.  If even the fallback cannot
    complete, the last :class:`FaultError` propagates.

    The ring needs >= 3 parties and the fallback >= 2 survivors; privacy
    for the survivors is preserved (their inputs stay masked by fresh
    shares), but the aggregate loses the crashed parties' contributions —
    callers see that explicitly in the outcome, never silently.
    """
    if plan is None:
        plan = FaultPlan()
    rng = resolve_protocol_rng(rng)
    transcript = transcript if transcript is not None else Transcript()
    names = [f"P{i}" for i in range(len(values))]
    crashed: set[str] = set()
    simulated = 0.0
    last_error: FaultError | None = None
    for attempt in range(retry.max_attempts):
        channel = FaultyChannel(plan, transcript, attempt=attempt,
                                modulus=modulus)
        try:
            value = ring_secure_sum(values, modulus, rng, channel=channel)
            return SumOutcome(value, "ring-sum", False, (), attempt + 1,
                              simulated + channel.simulated_seconds)
        except PartyCrashed as exc:
            crashed.add(exc.party)
            last_error = exc
        except MessageDropped as exc:
            last_error = exc
        simulated += channel.simulated_seconds + retry.sleep_for(attempt)
    survivors = [name for name in names if name not in crashed]
    surviving_values = [int(v) for name, v in zip(names, values)
                        if name not in crashed]
    if len(survivors) < 2 or len(survivors) == len(names):
        # Nothing to exclude (pure message loss) or not enough parties
        # left for any secure protocol: surface the failure.
        raise last_error if last_error is not None else FaultError(
            "ring secure sum failed with no identifiable fault"
        )
    reason = (f"ring protocol failed {retry.max_attempts} times; "
              f"crashed parties: {sorted(crashed)}")
    emit_decision("smc", "exclude-crashed-parties", reason,
                  survivors=len(survivors))
    channel = FaultyChannel(plan, transcript,
                            attempt=retry.max_attempts, modulus=modulus,
                            excluded=frozenset(crashed))
    # Rename survivors P0..Pm for the shares protocol, but keep the real
    # names on the transcript by mapping through the channel subclass.
    value = _shares_over_survivors(surviving_values, survivors, channel,
                                   modulus, rng)
    return SumOutcome(value, "shares-sum", True, tuple(sorted(crashed)),
                      retry.max_attempts + 1,
                      simulated + channel.simulated_seconds)


class _RenamingChannel(Channel):
    """Present survivor names to the transcript while reusing a channel."""

    def __init__(self, inner: FaultyChannel, names: Sequence[str]):
        self._inner = inner
        self._names = list(names)
        self.transcript = inner.transcript

    def _rename(self, default_name: str) -> str:
        index = int(default_name[1:])
        return self._names[index]

    def send(self, sender: str, receiver: str, tag: str,
             payload: object) -> object:
        return self._inner.send(self._rename(sender), self._rename(receiver),
                                tag, payload)


def _shares_over_survivors(values: list[int], names: Sequence[str],
                           channel: FaultyChannel, modulus: int,
                           rng) -> int:
    renamed = _RenamingChannel(channel, names)
    return shares_secure_sum(values, modulus, rng, channel=renamed)
