"""The scripted chaos scenario behind ``repro faults chaos``.

One deterministic run exercises every fault-tolerance path the runtime
has — byzantine PIR replicas, delayed and crashed deliveries, a crashed
SMC party, qdb replica failover and a full backend blackout — against the
S3a-style tracker workload, and *asserts the privacy and integrity
invariants hold under fire*:

* resilient PIR answers are bit-identical to the fault-free truth while a
  byzantine replica lies on every request (and the raw scheme, for
  contrast, is shown silently corrupting);
* every answered statistical query equals the pristine-database answer —
  degradation costs availability, never correctness;
* the answered-query masks still span no unit vector (no individual
  record became deducible while the engine was failing over);
* the secure-sum fallback excludes the crashed party *explicitly* and
  exposes no surviving party's private input (transcript exposure 0.0);
* the session never dies: total backend loss surfaces as a typed
  :class:`~repro.qdb.Refusal`, not an exception;
* every degradation decision taken along the way is reconstructable from
  the telemetry capture (``faults.degrade`` spans for pir, smc and qdb).

Any violated invariant raises :class:`~repro.faults.errors.ChaosError`,
which the CLI converts into a nonzero exit — ``make chaos`` is the gate.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..telemetry import instrument
from ..telemetry.observatory import (
    Alert,
    Observatory,
    replay_trace,
    validate_alert_record,
)
from ..telemetry.report import (
    degradation_decisions,
    read_trace,
    refusal_decisions,
)
from .errors import ChaosError
from .plan import Fault, FaultPlan
from .retry import RetryPolicy

__all__ = ["run_chaos"]


def _require(condition: bool, name: str, detail: str = "") -> str:
    """Record one invariant; raise :class:`ChaosError` when it fails."""
    if not condition:
        suffix = f" ({detail})" if detail else ""
        raise ChaosError(f"chaos invariant violated: {name}{suffix}")
    return name


def _qdb_phase(pop, seed: int, held: list[str]) -> dict:
    """Tracker-era workload against a failing replicated backend."""
    from ..qdb import (
        Degraded,
        QuerySetSizeControl,
        Refusal,
        StatisticalDatabase,
        SumAuditPolicy,
    )
    from .backend import ReplicatedBackend

    workload = [
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height > 170",
        "SELECT SUM(blood_pressure) WHERE weight <= 80",
        "SELECT COUNT(*) WHERE weight <= 80",
        "SELECT COUNT(*) WHERE height > 170 AND weight > 80",
        "SELECT AVG(blood_pressure) WHERE height <= 170",
        "SELECT COUNT(*)",  # guaranteed size-control refusal
    ]
    policies = lambda: [QuerySetSizeControl(5), SumAuditPolicy()]  # noqa: E731

    pristine = StatisticalDatabase(pop, policies())
    truth = pristine.ask_batch(workload)

    # Replica 0 dies after two reads; replica 1 answers slowly enough to
    # blow the first deadlines; replica 2 is healthy.  No blackout here.
    plan = FaultPlan(
        [
            Fault("crash", "qdb.replica:0", after=2),
            Fault("delay", "qdb.replica:1", delay=0.08, probability=0.5),
        ],
        seed=seed,
    )
    backend = ReplicatedBackend(pop, n_replicas=3, plan=plan)
    faulted_db = StatisticalDatabase(backend, policies())
    answers = faulted_db.ask_batch(workload)

    for got, want in zip(answers, truth):
        held.append(_require(
            got.refused == want.refused,
            "qdb refusal pattern matches pristine", str(got.query),
        ))
        if got.ok:
            held.append(_require(
                got.value == want.value and got.interval == want.interval,
                "answered values identical to pristine database",
                f"{got.query}: {got.value!r} != {want.value!r}",
            ))
    degraded = sum(isinstance(a, Degraded) for a in answers)
    held.append(_require(degraded >= 1, "at least one Degraded answer"))
    held.append(_require(
        any(a.refused and a.reason.startswith("size-control")
            for a in answers),
        "policy refusals still enforced during failover",
    ))

    # Basis safety: the answered query sets must span no unit vector.
    masks = [e.mask for e in faulted_db.history if e.answered]
    if masks:
        stacked = np.stack(masks).astype(np.float64)
        q, r = np.linalg.qr(stacked.T)
        keep = np.abs(np.diag(r)) > 1e-8
        col_norms = (q[:, keep] ** 2).sum(axis=1)
        held.append(_require(
            float(col_norms.max(initial=0.0)) < 1.0 - 1e-6,
            "no record deducible from answered masks",
        ))

    # Total loss: every replica of a second backend is down from read 0.
    blackout_plan = FaultPlan(
        [Fault("crash", "qdb-blackout.replica:0", after=0),
         Fault("crash", "qdb-blackout.replica:1", after=0)],
        seed=seed,
    )
    dead = ReplicatedBackend(pop, n_replicas=2, plan=blackout_plan,
                             name="qdb-blackout")
    dead_db = StatisticalDatabase(dead, policies())
    refusal = dead_db.ask("SELECT COUNT(*) WHERE height > 170")
    held.append(_require(
        isinstance(refusal, Refusal)
        and refusal.reason.startswith("backend: "),
        "backend blackout yields a typed Refusal, not an exception",
    ))

    return {
        "queries": len(workload),
        "answered": sum(a.ok for a in answers),
        "refused": sum(a.refused for a in answers),
        "degraded_answers": degraded,
        "backend_failovers": backend.metrics.counter(
            "faults.qdb.failovers").value,
        "blackout_refusals": dead_db.backend_refusals,
    }


def _pir_phase(pop, seed: int, f: int, held: list[str]) -> dict:
    """Byzantine, slow and crashed PIR replicas against one database."""
    from ..pir.itpir import TwoServerXorPIR
    from .pir import ResilientXorPIR, wrap_servers

    secrets = [int(v) for v in pop["blood_pressure"][:32]]
    rng = np.random.default_rng(seed)
    indices = [int(i) for i in rng.choice(len(secrets), size=8,
                                          replace=False)]
    truth = [secrets[i] for i in indices]

    # Replica group 0 lies on every request; group 1 is slow enough to
    # need retries; the remaining f+1 .. 2f honest groups carry the vote.
    plan = FaultPlan(
        [Fault("byzantine", "pir.replica:0"),
         Fault("delay", "pir.replica:1", delay=0.12)],
        seed=seed,
    )
    pir = ResilientXorPIR(secrets, f=max(1, f), plan=plan)
    values = pir.retrieve_batch_int(indices, rng=seed)
    held.append(_require(
        values == truth,
        "resilient PIR bit-identical to truth under byzantine replica",
        f"{values} != {truth}",
    ))
    outvoted = sum(r.outvoted for r in pir.last_reports)
    retries = sum(r.retries for r in pir.last_reports)
    held.append(_require(outvoted >= len(indices),
                         "byzantine candidates were outvoted"))

    # Quorum loss with the degraded fallback enabled: only one replica
    # group survives, the client logs the policy decision and serves.
    lossy_plan = FaultPlan(
        [Fault("crash", "pir-lossy.replica:0", after=0),
         Fault("crash", "pir-lossy.replica:1", after=0)],
        seed=seed,
    )
    lossy = ResilientXorPIR(secrets, f=1, plan=lossy_plan,
                            allow_degraded=True, name="pir-lossy")
    degraded_value = lossy.retrieve_int(indices[0], rng=seed + 1)
    held.append(_require(
        degraded_value == truth[0] and lossy.last_reports[0].degraded,
        "single-replica fallback is explicit and (here) correct",
    ))

    # The contrast demo: the same byzantine behaviour inside a *raw*
    # scheme silently corrupts the XOR reconstruction.
    raw_plan = FaultPlan([Fault("byzantine", "pir.server:1")], seed=seed)
    raw = wrap_servers(TwoServerXorPIR(secrets), raw_plan)
    corrupted = raw.retrieve_int(indices[0], rng=seed)
    held.append(_require(
        corrupted != truth[0],
        "raw scheme has no integrity (motivates the voting layer)",
    ))

    return {
        "indices": len(indices),
        "outvoted_candidates": outvoted,
        "retries": retries,
        "degraded_retrievals": int(
            lossy.metrics.counter("faults.pir.degraded_retrievals").value),
        "raw_scheme_corrupted": corrupted != truth[0],
    }


def _smc_phase(pop, seed: int, held: list[str],
               observatory: Observatory | None = None) -> dict:
    """Secure sum with a crashed party: explicit exclusion, no exposure."""
    from ..smc.party import Transcript, plaintext_exposure
    from .smc import resilient_secure_sum

    values = [int(v) for v in pop["weight"][:5]]
    names = [f"P{i}" for i in range(len(values))]

    healthy = resilient_secure_sum(values, FaultPlan(), rng=seed)
    held.append(_require(
        not healthy.degraded and healthy.value == sum(values),
        "fault-free secure sum exact via the ring protocol",
    ))

    crash_plan = FaultPlan(
        [Fault("crash", "smc.party:P1", after=0)], seed=seed
    )
    transcript = Transcript()
    outcome = resilient_secure_sum(values, crash_plan, rng=seed,
                                   transcript=transcript,
                                   retry=RetryPolicy(max_attempts=2))
    held.append(_require(
        outcome.degraded and outcome.excluded == ("P1",),
        "crashed party excluded explicitly, not silently",
    ))
    held.append(_require(
        outcome.value == sum(values) - values[1],
        "fallback sum exact over the survivors",
        f"{outcome.value} != {sum(values) - values[1]}",
    ))
    if observatory is not None:
        # SMC traffic lives in transcript counters, not spans.  The
        # *per-run* snapshot is the right granularity: the crashed party
        # appears only as a receiver here, whereas the process-wide
        # aggregate would blur in the healthy run's traffic.
        observatory.ingest_snapshot(transcript.metrics.snapshot())
    exposure = plaintext_exposure(
        transcript, {name: [float(v)] for name, v in zip(names, values)}
    )
    held.append(_require(
        exposure == 0.0,
        "no private input exposed in the degraded transcript",
        f"exposure={exposure}",
    ))
    return {
        "parties": len(values),
        "excluded": list(outcome.excluded),
        "fallback_protocol": outcome.protocol,
        "transcript_messages": len(transcript.messages),
        "exposure": exposure,
    }


def run_chaos(trace_path: str | Path, records: int = 120, seed: int = 3,
              f: int = 1) -> dict:
    """Run the chaos scenario; returns a summary, raises on violation.

    Everything stochastic flows from *seed* (fault decisions, query
    randomness, index choice), so a failing run is replayable bit-for-bit
    with the same arguments.  The telemetry capture written to
    *trace_path* is schema-validated and must contain the degradation
    decisions of all three subsystems.
    """
    from ..data import patients

    trace_path = Path(trace_path)
    pop = patients(records, seed=seed)
    held: list[str] = []
    observatory = Observatory()
    with instrument.session(trace_path) as live_tracer:
        observatory.attach(live_tracer)
        try:
            qdb_stats = _qdb_phase(pop, seed, held)
            pir_stats = _pir_phase(pop, seed, f, held)
            smc_stats = _smc_phase(pop, seed, held, observatory)
        finally:
            observatory.detach()

    spans = read_trace(trace_path, validate=True)
    degradations = degradation_decisions(spans)
    components = {d["component"] for d in degradations}
    held.append(_require(
        {"pir", "smc", "qdb"} <= components,
        "all three subsystems logged degradation decisions",
        f"got {sorted(components)}",
    ))
    held.append(_require(
        any(d["decision"] == "refuse-backend-unavailable"
            for d in degradations),
        "the blackout refusal is reconstructable from the trace",
    ))
    refusals = refusal_decisions(spans)
    held.append(_require(
        any(d["policy"] == "backend" for d in refusals)
        and any(d["policy"].startswith("size-control") for d in refusals),
        "trace separates policy refusals from availability refusals",
    ))

    # Observatory invariants: the detectors must notice the run's real
    # incidents — and nothing else.
    fired = {alert.name for alert in observatory.alerts}
    held.append(_require(
        "degradation-burst" in fired,
        "observatory flagged the degradation burst",
        f"fired: {sorted(fired)}",
    ))
    held.append(_require(
        any(a.name == "smc-traffic-imbalance" and "P1" in a.detail
            for a in observatory.alerts),
        "observatory flagged the crashed party's silent-receiver traffic",
    ))
    held.append(_require(
        "tracker-probe" not in fired and "pir-access-skew" not in fired,
        "no attack false positives on a fault-only workload",
        f"fired: {sorted(fired)}",
    ))
    alert_spans = [s for s in spans if s["name"] == "observatory.alert"]
    for record in alert_spans:
        validate_alert_record(record)  # AlertSchemaError fails the run
    replayed = replay_trace(spans).span_alerts()
    recorded = [
        Alert.from_span_attrs(s["attrs"]) for s in alert_spans
        if s["attrs"]["source"] == "span"
    ]
    held.append(_require(
        len(alert_spans) == len(observatory.alerts)
        and replayed == recorded,
        "every fired alert is a schema-valid span and replays identically",
        f"{len(alert_spans)} spans vs {len(observatory.alerts)} alerts",
    ))

    return {
        "trace": str(trace_path),
        "records": records,
        "seed": seed,
        "spans": len(spans),
        "degradation_decisions": len(degradations),
        "components_degraded": sorted(components),
        "invariants_held": len(held),
        "alerts": {
            "fired": len(observatory.alerts),
            "names": sorted(fired),
            "posture": observatory.posture(),
        },
        "qdb": qdb_stats,
        "pir": pir_stats,
        "smc": smc_stats,
    }
