"""The scripted chaos scenario behind ``repro faults chaos``.

One deterministic run exercises every fault-tolerance path the runtime
has — byzantine PIR replicas, delayed and crashed deliveries, a crashed
SMC party, qdb replica failover and a full backend blackout — against the
S3a-style tracker workload, and *asserts the privacy and integrity
invariants hold under fire*:

* resilient PIR answers are bit-identical to the fault-free truth while a
  byzantine replica lies on every request (and the raw scheme, for
  contrast, is shown silently corrupting);
* every answered statistical query equals the pristine-database answer —
  degradation costs availability, never correctness;
* the answered-query masks still span no unit vector (no individual
  record became deducible while the engine was failing over);
* the secure-sum fallback excludes the crashed party *explicitly* and
  exposes no surviving party's private input (transcript exposure 0.0);
* the session never dies: total backend loss surfaces as a typed
  :class:`~repro.qdb.Refusal`, not an exception;
* the sharded serving runtime refuses a tracker attack *split across
  shards* through its shared audit view (and the isolated-audit negative
  control demonstrably loses), sheds overload with typed frozen-reason
  refusals, and keeps healthy-shard sessions pristine while one shard's
  backend is blacked out;
* every degradation decision taken along the way is reconstructable from
  the telemetry capture (``faults.degrade`` spans for pir, smc, qdb and
  serving — including both frozen overload-refusal reasons).

Any violated invariant raises :class:`~repro.faults.errors.ChaosError`,
which the CLI converts into a nonzero exit — ``make chaos`` is the gate.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..telemetry import instrument
from ..telemetry.observatory import (
    Alert,
    Observatory,
    replay_trace,
    validate_alert_record,
)
from ..telemetry.report import (
    degradation_decisions,
    read_trace,
    refusal_decisions,
)
from .errors import ChaosError
from .plan import Fault, FaultPlan
from .retry import RetryPolicy

__all__ = ["run_chaos"]


def _require(condition: bool, name: str, detail: str = "") -> str:
    """Record one invariant; raise :class:`ChaosError` when it fails."""
    if not condition:
        suffix = f" ({detail})" if detail else ""
        raise ChaosError(f"chaos invariant violated: {name}{suffix}")
    return name


def _qdb_phase(pop, seed: int, held: list[str]) -> dict:
    """Tracker-era workload against a failing replicated backend."""
    from ..qdb import (
        Degraded,
        QuerySetSizeControl,
        Refusal,
        StatisticalDatabase,
        SumAuditPolicy,
    )
    from .backend import ReplicatedBackend

    workload = [
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height > 170",
        "SELECT SUM(blood_pressure) WHERE weight <= 80",
        "SELECT COUNT(*) WHERE weight <= 80",
        "SELECT COUNT(*) WHERE height > 170 AND weight > 80",
        "SELECT AVG(blood_pressure) WHERE height <= 170",
        "SELECT COUNT(*)",  # guaranteed size-control refusal
    ]
    policies = lambda: [QuerySetSizeControl(5), SumAuditPolicy()]  # noqa: E731

    pristine = StatisticalDatabase(pop, policies())
    truth = pristine.ask_batch(workload)

    # Replica 0 dies after two reads; replica 1 answers slowly enough to
    # blow the first deadlines; replica 2 is healthy.  No blackout here.
    plan = FaultPlan(
        [
            Fault("crash", "qdb.replica:0", after=2),
            Fault("delay", "qdb.replica:1", delay=0.08, probability=0.5),
        ],
        seed=seed,
    )
    backend = ReplicatedBackend(pop, n_replicas=3, plan=plan)
    faulted_db = StatisticalDatabase(backend, policies())
    answers = faulted_db.ask_batch(workload)

    for got, want in zip(answers, truth):
        held.append(_require(
            got.refused == want.refused,
            "qdb refusal pattern matches pristine", str(got.query),
        ))
        if got.ok:
            held.append(_require(
                got.value == want.value and got.interval == want.interval,
                "answered values identical to pristine database",
                f"{got.query}: {got.value!r} != {want.value!r}",
            ))
    degraded = sum(isinstance(a, Degraded) for a in answers)
    held.append(_require(degraded >= 1, "at least one Degraded answer"))
    held.append(_require(
        any(a.refused and a.reason.startswith("size-control")
            for a in answers),
        "policy refusals still enforced during failover",
    ))

    # Basis safety: the answered query sets must span no unit vector.
    masks = [e.mask for e in faulted_db.history if e.answered]
    if masks:
        stacked = np.stack(masks).astype(np.float64)
        q, r = np.linalg.qr(stacked.T)
        keep = np.abs(np.diag(r)) > 1e-8
        col_norms = (q[:, keep] ** 2).sum(axis=1)
        held.append(_require(
            float(col_norms.max(initial=0.0)) < 1.0 - 1e-6,
            "no record deducible from answered masks",
        ))

    # Total loss: every replica of a second backend is down from read 0.
    blackout_plan = FaultPlan(
        [Fault("crash", "qdb-blackout.replica:0", after=0),
         Fault("crash", "qdb-blackout.replica:1", after=0)],
        seed=seed,
    )
    dead = ReplicatedBackend(pop, n_replicas=2, plan=blackout_plan,
                             name="qdb-blackout")
    dead_db = StatisticalDatabase(dead, policies())
    refusal = dead_db.ask("SELECT COUNT(*) WHERE height > 170")
    held.append(_require(
        isinstance(refusal, Refusal)
        and refusal.reason.startswith("backend: "),
        "backend blackout yields a typed Refusal, not an exception",
    ))

    return {
        "queries": len(workload),
        "answered": sum(a.ok for a in answers),
        "refused": sum(a.refused for a in answers),
        "degraded_answers": degraded,
        "backend_failovers": backend.metrics.counter(
            "faults.qdb.failovers").value,
        "blackout_refusals": dead_db.backend_refusals,
    }


def _pir_phase(pop, seed: int, f: int, held: list[str]) -> dict:
    """Byzantine, slow and crashed PIR replicas against one database."""
    from ..pir.itpir import TwoServerXorPIR
    from .pir import ResilientXorPIR, wrap_servers

    secrets = [int(v) for v in pop["blood_pressure"][:32]]
    rng = np.random.default_rng(seed)
    indices = [int(i) for i in rng.choice(len(secrets), size=8,
                                          replace=False)]
    truth = [secrets[i] for i in indices]

    # Replica group 0 lies on every request; group 1 is slow enough to
    # need retries; the remaining f+1 .. 2f honest groups carry the vote.
    plan = FaultPlan(
        [Fault("byzantine", "pir.replica:0"),
         Fault("delay", "pir.replica:1", delay=0.12)],
        seed=seed,
    )
    pir = ResilientXorPIR(secrets, f=max(1, f), plan=plan)
    values = pir.retrieve_batch_int(indices, rng=seed)
    held.append(_require(
        values == truth,
        "resilient PIR bit-identical to truth under byzantine replica",
        f"{values} != {truth}",
    ))
    outvoted = sum(r.outvoted for r in pir.last_reports)
    retries = sum(r.retries for r in pir.last_reports)
    held.append(_require(outvoted >= len(indices),
                         "byzantine candidates were outvoted"))

    # Quorum loss with the degraded fallback enabled: only one replica
    # group survives, the client logs the policy decision and serves.
    lossy_plan = FaultPlan(
        [Fault("crash", "pir-lossy.replica:0", after=0),
         Fault("crash", "pir-lossy.replica:1", after=0)],
        seed=seed,
    )
    lossy = ResilientXorPIR(secrets, f=1, plan=lossy_plan,
                            allow_degraded=True, name="pir-lossy")
    degraded_value = lossy.retrieve_int(indices[0], rng=seed + 1)
    held.append(_require(
        degraded_value == truth[0] and lossy.last_reports[0].degraded,
        "single-replica fallback is explicit and (here) correct",
    ))

    # The contrast demo: the same byzantine behaviour inside a *raw*
    # scheme silently corrupts the XOR reconstruction.
    raw_plan = FaultPlan([Fault("byzantine", "pir.server:1")], seed=seed)
    raw = wrap_servers(TwoServerXorPIR(secrets), raw_plan)
    corrupted = raw.retrieve_int(indices[0], rng=seed)
    held.append(_require(
        corrupted != truth[0],
        "raw scheme has no integrity (motivates the voting layer)",
    ))

    return {
        "indices": len(indices),
        "outvoted_candidates": outvoted,
        "retries": retries,
        "degraded_retrievals": int(
            lossy.metrics.counter("faults.pir.degraded_retrievals").value),
        "raw_scheme_corrupted": corrupted != truth[0],
    }


def _smc_phase(pop, seed: int, held: list[str],
               observatory: Observatory | None = None) -> dict:
    """Secure sum with a crashed party: explicit exclusion, no exposure."""
    from ..smc.party import Transcript, plaintext_exposure
    from .smc import resilient_secure_sum

    values = [int(v) for v in pop["weight"][:5]]
    names = [f"P{i}" for i in range(len(values))]

    healthy = resilient_secure_sum(values, FaultPlan(), rng=seed)
    held.append(_require(
        not healthy.degraded and healthy.value == sum(values),
        "fault-free secure sum exact via the ring protocol",
    ))

    crash_plan = FaultPlan(
        [Fault("crash", "smc.party:P1", after=0)], seed=seed
    )
    transcript = Transcript()
    outcome = resilient_secure_sum(values, crash_plan, rng=seed,
                                   transcript=transcript,
                                   retry=RetryPolicy(max_attempts=2))
    held.append(_require(
        outcome.degraded and outcome.excluded == ("P1",),
        "crashed party excluded explicitly, not silently",
    ))
    held.append(_require(
        outcome.value == sum(values) - values[1],
        "fallback sum exact over the survivors",
        f"{outcome.value} != {sum(values) - values[1]}",
    ))
    if observatory is not None:
        # SMC traffic lives in transcript counters, not spans.  The
        # *per-run* snapshot is the right granularity: the crashed party
        # appears only as a receiver here, whereas the process-wide
        # aggregate would blur in the healthy run's traffic.
        observatory.ingest_snapshot(transcript.metrics.snapshot())
    exposure = plaintext_exposure(
        transcript, {name: [float(v)] for name, v in zip(names, values)}
    )
    held.append(_require(
        exposure == 0.0,
        "no private input exposed in the degraded transcript",
        f"exposure={exposure}",
    ))
    return {
        "parties": len(values),
        "excluded": list(outcome.excluded),
        "fallback_protocol": outcome.protocol,
        "transcript_messages": len(transcript.messages),
        "exposure": exposure,
    }


def _serving_phase(pop, seed: int, held: list[str]) -> dict:
    """Cross-shard invariants: split tracker, overload, faulted shard."""
    from ..qdb import QuerySetSizeControl, Refusal, StatisticalDatabase, \
        SumAuditPolicy
    from ..serving import ADMISSION_PREFIX, FakeClock, ServingRuntime, \
        split_tracker_attack
    from ..serving.admission import REASON_QUEUE_FULL, REASON_RATE_LIMITED
    from ..sdc import equivalence_classes
    from .backend import ReplicatedBackend

    targets = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ]

    # (1) The split tracker: padding and tracker halves arrive via
    # sessions pinned to different shards, yet the shared audit view
    # refuses the attack exactly as a single engine would.  Some
    # (records, seed) populations contain no single-out record the
    # tracker could isolate; the attack sub-phase is vacuous there and
    # is skipped — overload and fault isolation below never need a
    # target, and run_chaos demands the tracker-probe alert exactly
    # when the attack actually ran.
    if targets:
        target = targets[0]
        with ServingRuntime(pop, shards=2, sum_audit=True) as shared_rt:
            sessions = shared_rt.distinct_shard_sessions("chaos-split", 2)
            held.append(_require(
                shared_rt.shard_of(sessions[0])
                != shared_rt.shard_of(sessions[1]),
                "cohort sessions provably route to distinct shards",
            ))
            outcome = split_tracker_attack(
                shared_rt, pop, target, ["height", "weight"],
                "blood_pressure", sessions=sessions,
            )
        held.append(_require(
            not outcome.succeeded and outcome.refusals >= 1,
            "split tracker refused across shards under the shared audit",
            outcome.detail,
        ))
        # Negative control: with per-shard *isolated* audits each shard
        # sees an innocent half and the identical attack succeeds
        # exactly — proving the shared view is the load-bearing defence.
        with ServingRuntime(pop, shards=2, sum_audit=True,
                            shared_audit=False) as isolated_rt:
            control = split_tracker_attack(
                isolated_rt, pop, target, ["height", "weight"],
                "blood_pressure", sessions=sessions,
            )
        held.append(_require(
            control.exact,
            "isolated per-shard audits lose to the split tracker "
            "(negative control)",
            control.detail,
        ))
        split_stats = {
            "sessions": sessions,
            "refusals": outcome.refusals,
            "detail": outcome.detail,
            "isolated_control_exact": control.exact,
        }
    else:
        split_stats = {"skipped": "no single-out split-tracker target"}

    # (2) Overload: both admission paths must refuse *typed* (Refusal,
    # frozen "admission: " reason) and audit the decision to the trace.
    probe = "SELECT COUNT(*) WHERE height > 170"
    with ServingRuntime(pop, shards=2, session_rate=0.0, session_burst=2,
                        clock=FakeClock(), auto_start=False) as rate_rt:
        futures = [rate_rt.submit("greedy", probe) for _ in range(8)]
        rate_rt.start()
        answers = [f.result() for f in futures]
    rate_limited = [a for a in answers if a.refused]
    held.append(_require(
        len(rate_limited) == 6
        and all(isinstance(a, Refusal) for a in rate_limited)
        and all(a.reason.startswith(ADMISSION_PREFIX + REASON_RATE_LIMITED)
                for a in rate_limited),
        "rate-limit overload yields typed frozen-reason refusals",
        f"{len(rate_limited)} refused of {len(answers)}",
    ))
    with ServingRuntime(pop, shards=1, queue_depth=2,
                        auto_start=False) as full_rt:
        futures = [full_rt.submit("burst", probe) for _ in range(5)]
        full_rt.start()
        answers = [f.result() for f in futures]
    queue_full = [a for a in answers if a.refused]
    held.append(_require(
        len(queue_full) == 3
        and all(isinstance(a, Refusal) for a in queue_full)
        and all(a.reason.startswith(ADMISSION_PREFIX + REASON_QUEUE_FULL)
                for a in queue_full),
        "queue-full backpressure yields typed frozen-reason refusals",
        f"{len(queue_full)} refused of {len(answers)}",
    ))

    # (3) Fault isolation: shard 1's backend is fully blacked out; its
    # sessions get typed backend refusals while sessions on the healthy
    # shard see answers identical to a pristine single-engine database —
    # and the dead shard commits nothing to the shared audit.
    blackout = FaultPlan(
        [Fault("crash", "serving-shard1.replica:0", after=0),
         Fault("crash", "serving-shard1.replica:1", after=0)],
        seed=seed,
    )

    def backend_for(index: int):
        if index == 1:
            return ReplicatedBackend(pop, n_replicas=2, plan=blackout,
                                     name="serving-shard1")
        return pop

    workload = [
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height > 170",
        "SELECT SUM(blood_pressure) WHERE weight <= 80",
        "SELECT COUNT(*)",  # size-control refusal must survive sharding
    ]
    pristine = StatisticalDatabase(
        pop, [QuerySetSizeControl(5), SumAuditPolicy()]
    )
    truth = pristine.ask_batch(workload)
    with ServingRuntime(pop, shards=2, sum_audit=True,
                        backend_factory=backend_for) as faulted_rt:
        dead_session, live_session = sorted(
            faulted_rt.distinct_shard_sessions("chaos-fault", 2),
            key=faulted_rt.shard_of, reverse=True,
        )
        held.append(_require(
            faulted_rt.shard_of(dead_session) == 1
            and faulted_rt.shard_of(live_session) == 0,
            "fault-phase sessions cover both shards",
        ))
        # The dead session asks only predicate queries: resolving their
        # masks requires backend reads, which is where the blackout
        # bites ("SELECT COUNT(*)" would be refused by the size control
        # before any read — a policy refusal, not an availability one).
        dead_answers = [faulted_rt.ask(dead_session, q)
                        for q in workload[:3]]
        live_answers = [faulted_rt.ask(live_session, q) for q in workload]
    held.append(_require(
        all(a.refused and a.reason.startswith("backend: ")
            for a in dead_answers),
        "faulted shard degrades to typed backend refusals only",
    ))
    for got, want in zip(live_answers, truth):
        held.append(_require(
            got.refused == want.refused
            and (not got.ok or got.value == want.value),
            "healthy-shard session identical to pristine database",
            f"{got.query}: {got.value!r} != {want.value!r}",
        ))

    return {
        "split_tracker": split_stats,
        "overload": {
            "rate_limited": len(rate_limited),
            "queue_full": len(queue_full),
        },
        "faulted_shard": {
            "dead_refusals": len(dead_answers),
            "live_answered": sum(a.ok for a in live_answers),
        },
    }


def run_chaos(trace_path: str | Path, records: int = 120, seed: int = 3,
              f: int = 1) -> dict:
    """Run the chaos scenario; returns a summary, raises on violation.

    Everything stochastic flows from *seed* (fault decisions, query
    randomness, index choice), so a failing run is replayable bit-for-bit
    with the same arguments.  The telemetry capture written to
    *trace_path* is schema-validated and must contain the degradation
    decisions of all three subsystems.
    """
    from ..data import patients

    trace_path = Path(trace_path)
    pop = patients(records, seed=seed)
    held: list[str] = []
    observatory = Observatory()
    with instrument.session(trace_path) as live_tracer:
        observatory.attach(live_tracer)
        try:
            qdb_stats = _qdb_phase(pop, seed, held)
            pir_stats = _pir_phase(pop, seed, f, held)
            smc_stats = _smc_phase(pop, seed, held, observatory)
            serving_stats = _serving_phase(pop, seed, held)
        finally:
            observatory.detach()

    spans = read_trace(trace_path, validate=True)
    degradations = degradation_decisions(spans)
    components = {d["component"] for d in degradations}
    held.append(_require(
        {"pir", "smc", "qdb", "serving"} <= components,
        "all four subsystems logged degradation decisions",
        f"got {sorted(components)}",
    ))
    overload = [d for d in degradations
                if d["component"] == "serving"
                and d["decision"] == "refuse-overload"]
    overload_reasons = {d["reason"] for d in overload}
    held.append(_require(
        {"session rate limit exceeded",
         "shard ingress queue full"} <= overload_reasons,
        "both frozen overload reasons reconstructable from the trace",
        f"got {sorted(overload_reasons)}",
    ))
    held.append(_require(
        any(d["decision"] == "refuse-backend-unavailable"
            for d in degradations),
        "the blackout refusal is reconstructable from the trace",
    ))
    refusals = refusal_decisions(spans)
    held.append(_require(
        any(d["policy"] == "backend" for d in refusals)
        and any(d["policy"].startswith("size-control") for d in refusals),
        "trace separates policy refusals from availability refusals",
    ))

    # Observatory invariants: the detectors must notice the run's real
    # incidents — and nothing else.
    fired = {alert.name for alert in observatory.alerts}
    held.append(_require(
        "degradation-burst" in fired,
        "observatory flagged the degradation burst",
        f"fired: {sorted(fired)}",
    ))
    held.append(_require(
        any(a.name == "smc-traffic-imbalance" and "P1" in a.detail
            for a in observatory.alerts),
        "observatory flagged the crashed party's silent-receiver traffic",
    ))
    # The serving phase runs a *real* cross-shard split tracker (when
    # the population holds a single-out target), so tracker-probe must
    # fire exactly when the attack ran: a required true positive on the
    # default parameters, a forbidden false positive on target-less
    # populations.  pir-access-skew stays a forbidden false positive
    # either way (nothing skews PIR access here).
    tracker_ran = "skipped" not in serving_stats["split_tracker"]
    held.append(_require(
        ("tracker-probe" in fired) == tracker_ran,
        "tracker-probe verdict matches whether the split tracker ran",
        f"ran={tracker_ran}, fired: {sorted(fired)}",
    ))
    held.append(_require(
        "pir-access-skew" not in fired,
        "no attack false positives beyond the injected split tracker",
        f"fired: {sorted(fired)}",
    ))
    alert_spans = [s for s in spans if s["name"] == "observatory.alert"]
    for record in alert_spans:
        validate_alert_record(record)  # AlertSchemaError fails the run
    replayed = replay_trace(spans).span_alerts()
    recorded = [
        Alert.from_span_attrs(s["attrs"]) for s in alert_spans
        if s["attrs"]["source"] == "span"
    ]
    held.append(_require(
        len(alert_spans) == len(observatory.alerts)
        and replayed == recorded,
        "every fired alert is a schema-valid span and replays identically",
        f"{len(alert_spans)} spans vs {len(observatory.alerts)} alerts",
    ))

    return {
        "trace": str(trace_path),
        "records": records,
        "seed": seed,
        "spans": len(spans),
        "degradation_decisions": len(degradations),
        "components_degraded": sorted(components),
        "invariants_held": len(held),
        "alerts": {
            "fired": len(observatory.alerts),
            "names": sorted(fired),
            "posture": observatory.posture(),
        },
        "qdb": qdb_stats,
        "pir": pir_stats,
        "smc": smc_stats,
        "serving": serving_stats,
    }
