"""Exception types for the fault-tolerance layer.

This module is deliberately dependency-free (stdlib only, no imports from
the rest of the package) so that low layers — the qdb engine, the SMC
channel — can raise and catch these without creating import cycles with
:mod:`repro.faults` proper.

Hierarchy::

    FaultError                    everything the fault layer can raise
    ├── BackendUnavailable        a qdb storage backend lost all replicas
    ├── MessageDropped            an SMC channel dropped one message
    ├── PartyCrashed              an SMC party stopped sending permanently
    ├── QuorumLostError           a PIR vote fell below f+1 agreement
    │   └── PIRUnavailableError   no PIR replica answered at all
    └── ChaosError                a chaos-scenario privacy invariant broke
"""

from __future__ import annotations

__all__ = [
    "BackendUnavailable",
    "ChaosError",
    "FaultError",
    "MessageDropped",
    "PIRUnavailableError",
    "PartyCrashed",
    "QuorumLostError",
]


class FaultError(RuntimeError):
    """Base class for every failure the fault layer surfaces."""


class BackendUnavailable(FaultError):
    """Every replica of a qdb storage backend failed to serve a read.

    The engine converts this into a typed :class:`~repro.qdb.Refusal`
    answer — the query is *refused*, never silently answered from stale
    or corrupted state.
    """


class MessageDropped(FaultError):
    """One SMC protocol message was lost in transit (transient)."""

    def __init__(self, sender: str, receiver: str, op: int):
        super().__init__(
            f"message #{op} from {sender} to {receiver} was dropped"
        )
        self.sender = sender
        self.receiver = receiver
        self.op = op


class PartyCrashed(FaultError):
    """An SMC party crashed and will send no further messages (sticky)."""

    def __init__(self, party: str, op: int):
        super().__init__(f"party {party} crashed before message #{op}")
        self.party = party
        self.op = op


class QuorumLostError(FaultError):
    """Majority-vote PIR reconciliation found no f+1 agreeing replicas."""


class PIRUnavailableError(QuorumLostError):
    """No PIR replica delivered any answer within the retry budget."""


class ChaosError(FaultError):
    """A scripted chaos scenario violated a privacy or safety invariant."""
