"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is the single source of randomness for every injected
failure in a run.  Five fault kinds cover the failure modes the runtime
must survive:

``drop``
    The message/answer is lost in transit (transient; retries may succeed).
``delay``
    Delivery takes ``delay`` extra simulated seconds; a reply slower than
    the caller's timeout is indistinguishable from a drop.
``corrupt``
    ``bits`` random bit positions of the payload are flipped (models a
    faulty link or disk; a checksum would catch it).
``byzantine``
    The payload is replaced wholesale with deterministic garbage (models
    an adversarial server that answers *plausibly but wrongly* — no
    checksum catches it, only cross-replica voting does).
``crash``
    The target stops responding permanently once it has served ``after``
    operations (crash-after-k-messages; sticky, unlike ``drop``).

Determinism contract
--------------------
Every decision is a *pure function* of ``(plan seed, target, op, attempt)``
— no hidden stream state.  Two consequences the test suite relies on:

* replaying the same plan reproduces the same failures, byte for byte;
* a batched operation and the equivalent sequence of single operations
  observe *identical* faults, because each (target, op) pair derives its
  own generator instead of consuming a shared stream in arrival order.

The only mutable state is the per-target operation counter, advanced
explicitly via :meth:`FaultPlan.take_ops` by whoever issues operations.

>>> plan = FaultPlan([Fault("crash", "pir.replica:2", after=1)], seed=7)
>>> plan.outcome("pir.replica:2", op=0).crashed
False
>>> plan.outcome("pir.replica:2", op=1).crashed
True
>>> plan.outcome("pir.replica:0", op=0).delivered   # no fault configured
True
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["FAULT_KINDS", "Fault", "FaultOutcome", "FaultPlan", "NO_FAULT"]

#: The fault kinds a plan understands.
FAULT_KINDS = ("drop", "delay", "corrupt", "byzantine", "crash")

#: Salt mixed into payload-replacement rng keys (vs. the decision key).
_PAYLOAD_SALT = 0x50594C44  # "PYLD"


@dataclass(frozen=True)
class Fault:
    """One fault specification bound to a named target.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        The component the fault attaches to, e.g. ``"pir.replica:1"``,
        ``"qdb.replica:0"``, ``"smc.party:P2"``.  Naming is by convention;
        the plan never interprets the string beyond hashing it.
    probability:
        Per-operation trigger probability (ignored for ``crash``, which
        is deterministic in ``after``).
    after:
        For ``crash``: operations served before the crash takes effect.
    delay:
        For ``delay``: added latency in simulated seconds.
    bits:
        For ``corrupt``: number of bit positions flipped per payload.
    """

    kind: str
    target: str
    probability: float = 1.0
    after: int = 0
    delay: float = 0.0
    bits: int = 8

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.bits < 1:
            raise ValueError("bits must be >= 1")


class FaultOutcome:
    """What the plan decided for one (target, op, attempt) triple.

    Immutable once constructed; payload mutation (:meth:`apply_bytes`,
    :meth:`apply_int`) derives its randomness from the same key as the
    decision, so corrupted payloads are reproducible too.
    """

    __slots__ = ("target", "op", "attempt", "crashed", "dropped",
                 "latency", "flip_bits", "byzantine", "_key")

    def __init__(self, target: str, op: int, attempt: int,
                 crashed: bool = False, dropped: bool = False,
                 latency: float = 0.0, flip_bits: int = 0,
                 byzantine: bool = False,
                 key: tuple[int, ...] = (0,)):
        self.target = target
        self.op = op
        self.attempt = attempt
        self.crashed = crashed
        self.dropped = dropped
        self.latency = latency
        self.flip_bits = flip_bits
        self.byzantine = byzantine
        self._key = key

    @property
    def delivered(self) -> bool:
        """True when a reply arrives at all (possibly late or corrupted)."""
        return not (self.crashed or self.dropped)

    @property
    def corrupts(self) -> bool:
        """True when the delivered payload differs from the honest one."""
        return self.delivered and (self.byzantine or self.flip_bits > 0)

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self._key + (_PAYLOAD_SALT,))
        )

    def apply_bytes(self, payload: bytes) -> bytes | None:
        """The payload as the receiver sees it (None when not delivered)."""
        if not self.delivered:
            return None
        if self.byzantine:
            rng = self._rng()
            return rng.integers(0, 256, len(payload), dtype=np.uint8).tobytes()
        if self.flip_bits:
            buf = np.frombuffer(payload, dtype=np.uint8).copy()
            if buf.size:
                rng = self._rng()
                positions = rng.integers(0, buf.size * 8, self.flip_bits)
                np.bitwise_xor.at(
                    buf, positions // 8,
                    np.uint8(1) << (positions % 8).astype(np.uint8),
                )
            return buf.tobytes()
        return payload

    def apply_int(self, value: int, modulus: int | None = None) -> int | None:
        """Integer payloads: byzantine replacement / bit flips mod *modulus*."""
        if not self.delivered:
            return None
        bound = modulus if modulus is not None else 1 << 64
        if self.byzantine:
            return int(self._rng().integers(0, min(bound, 1 << 63)))
        if self.flip_bits:
            rng = self._rng()
            width = max(1, bound.bit_length() - 1)
            flipped = int(value)
            for position in rng.integers(0, width, self.flip_bits):
                flipped ^= 1 << int(position)
            return flipped % bound
        return int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = [name for name in ("crashed", "dropped", "byzantine")
                 if getattr(self, name)]
        if self.flip_bits:
            flags.append(f"flip_bits={self.flip_bits}")
        if self.latency:
            flags.append(f"latency={self.latency:g}")
        state = ", ".join(flags) or "clean"
        return (f"FaultOutcome({self.target!r}, op={self.op}, "
                f"attempt={self.attempt}: {state})")


#: Shared outcome for targets with no configured faults (fast path).
NO_FAULT = FaultOutcome("", 0, 0)


class FaultPlan:
    """A seeded collection of :class:`Fault` specs plus per-target counters.

    The plan is cheap to consult: targets with no configured faults get
    the shared :data:`NO_FAULT` singleton without touching any rng — the
    fault-wrapping layer costs (almost) nothing when no faults are
    injected, which the benchmark overhead gate enforces.

    >>> plan = FaultPlan([Fault("byzantine", "pir.replica:1")], seed=11)
    >>> outcome = plan.outcome("pir.replica:1", op=0)
    >>> outcome.byzantine and outcome.delivered
    True
    >>> outcome.apply_bytes(b"honest!!") == b"honest!!"
    False
    >>> again = plan.outcome("pir.replica:1", op=0)   # pure function of key
    >>> again.apply_bytes(b"honest!!") == outcome.apply_bytes(b"honest!!")
    True
    """

    def __init__(self, faults: Iterable[Fault] = (), seed: int = 0):
        self.faults: tuple[Fault, ...] = tuple(faults)
        self.seed = int(seed) & 0xFFFFFFFF
        self._by_target: dict[str, tuple[Fault, ...]] = {}
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"expected Fault, got {type(fault).__name__}")
            self._by_target.setdefault(fault.target, ())
            self._by_target[fault.target] += (fault,)
        self._ops: dict[str, int] = {}

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self._by_target

    def has_faults(self, target: str) -> bool:
        """True when any fault is configured for *target*."""
        return target in self._by_target

    def faults_for(self, target: str) -> tuple[Fault, ...]:
        """The fault specs attached to *target* (possibly empty)."""
        return self._by_target.get(target, ())

    def targets(self) -> tuple[str, ...]:
        """Every target named by some fault spec, in spec order."""
        return tuple(self._by_target)

    def take_ops(self, target: str, count: int = 1) -> int:
        """Advance *target*'s operation counter; returns the start index.

        A batch of B operations against one target claims B consecutive
        op indices up front — this is what makes batched and sequential
        execution observe the same faults.
        """
        start = self._ops.get(target, 0)
        self._ops[target] = start + count
        return start

    def ops_issued(self, target: str) -> int:
        """Operations claimed against *target* so far."""
        return self._ops.get(target, 0)

    def reset(self) -> None:
        """Zero every per-target operation counter (fresh run, same plan)."""
        self._ops.clear()

    def copy(self) -> "FaultPlan":
        """Same specs and seed, fresh operation counters."""
        return FaultPlan(self.faults, self.seed)

    def _key(self, target: str, op: int, attempt: int) -> tuple[int, ...]:
        return (self.seed, zlib.crc32(target.encode()), int(op), int(attempt))

    def rng(self, target: str, op: int, attempt: int = 0,
            salt: int = 0) -> np.random.Generator:
        """A generator keyed on (seed, target, op, attempt, salt).

        The retry path uses this for re-query randomness so that a retried
        operation draws identical masks regardless of batch shape.
        """
        return np.random.default_rng(
            np.random.SeedSequence(self._key(target, op, attempt) + (salt,))
        )

    def outcome(self, target: str, op: int | None = None,
                attempt: int = 0) -> FaultOutcome:
        """Decide what happens to operation *op* of *target* on *attempt*.

        With ``op=None`` the target's counter is advanced by one (the
        common single-operation case).
        """
        if op is None:
            op = self.take_ops(target)
        specs = self._by_target.get(target)
        if not specs:
            return NO_FAULT
        key = self._key(target, op, attempt)
        rng = np.random.default_rng(np.random.SeedSequence(key))
        crashed = dropped = byzantine = False
        latency = 0.0
        flip_bits = 0
        for fault in specs:
            if fault.kind == "crash":
                crashed = crashed or op >= fault.after
                continue
            # One draw per non-crash spec, unconditionally, so a single
            # spec's decision never depends on which other specs fired.
            if float(rng.random()) >= fault.probability:
                continue
            if fault.kind == "drop":
                dropped = True
            elif fault.kind == "delay":
                latency += fault.delay
            elif fault.kind == "corrupt":
                flip_bits += fault.bits
            elif fault.kind == "byzantine":
                byzantine = True
        return FaultOutcome(target, op, attempt, crashed, dropped,
                            latency, flip_bits, byzantine, key=key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan({len(self.faults)} faults over "
                f"{len(self._by_target)} targets, seed={self.seed})")


def random_fault_plan(rng: np.random.Generator,
                      targets: Sequence[str],
                      max_faults: int = 3,
                      kinds: Sequence[str] = FAULT_KINDS) -> FaultPlan:
    """A random plan over *targets* — the property tests' plan generator.

    Drawn entirely from the caller's generator, so hypothesis /
    randomized tests control reproducibility with a single seed.
    """
    n_faults = int(rng.integers(0, max_faults + 1))
    faults = []
    for _ in range(n_faults):
        kind = str(kinds[int(rng.integers(0, len(kinds)))])
        target = str(targets[int(rng.integers(0, len(targets)))])
        faults.append(Fault(
            kind, target,
            probability=float(rng.uniform(0.25, 1.0)),
            after=int(rng.integers(0, 4)),
            delay=float(rng.uniform(0.0, 0.2)),
            bits=int(rng.integers(1, 16)),
        ))
    return FaultPlan(faults, seed=int(rng.integers(0, 2**32)))
