"""A replicated storage backend for the statistical database engine.

:class:`ReplicatedBackend` is a drop-in :class:`~repro.data.table.Dataset`
whose column reads fan out over ``n_replicas`` simulated storage replicas.
Every read walks the replicas in order through the
:class:`~repro.faults.plan.FaultPlan` + retry schedule:

* a replica that times out, drops, or has crashed is skipped (failover);
* a replica whose delivery is *corrupted* (corrupt/byzantine outcome) is
  treated as failed too — reads are checksummed, and the engine must
  never compute statistics from corrupted microdata (answering wrongly
  is a worse privacy failure than refusing: a perturbed-looking answer
  with no policy accounting breaks the auditing invariants silently);
* the first healthy replica serves the read; if any replica was skipped
  on the way, the read is flagged *degraded* and the failover logged;
* when every replica fails, :class:`BackendUnavailable` is raised — the
  engine converts it into a typed ``Refusal`` answer.

Since the replicas simulate copies of the same microdata, the data served
after failover is bit-identical to the healthy path — degradation here
costs availability and redundancy margin, never correctness.

>>> import numpy as np
>>> from repro.data import Dataset
>>> from repro.faults.plan import Fault, FaultPlan
>>> data = Dataset({"x": np.arange(6.0)})
>>> plan = FaultPlan([Fault("crash", "qdb.replica:0", after=0)], seed=1)
>>> backend = ReplicatedBackend(data, n_replicas=2, plan=plan)
>>> float(backend.column("x").sum())      # replica 1 takes over
15.0
>>> backend.consume_degraded()
True
"""

from __future__ import annotations

from ..data.table import Dataset
from ..telemetry.registry import MetricsRegistry
from .errors import BackendUnavailable
from .plan import FaultPlan
from .retry import DEFAULT_RETRY, RetryPolicy, emit_decision, resolve_delivery

__all__ = ["ReplicatedBackend"]


class ReplicatedBackend(Dataset):
    """Dataset proxy with per-read replica failover.

    Threat model: replicas fail by crashing, timing out, or serving
    corrupted bytes (caught by checksum); they are not adversarial toward
    the privacy policies — policy state lives in the engine, above this
    layer.  Failure behaviour: reads fail over silently-but-logged;
    total replica loss raises :class:`BackendUnavailable`.

    Parameters
    ----------
    data:
        The microdata to replicate (columns are copied by reference; the
        simulation does not duplicate memory per replica).
    n_replicas:
        Independent storage replicas (>= 1).
    plan / retry:
        Fault plan (targets ``"<name>.replica:<r>"``) and retry schedule.
    name:
        Target-name prefix, so several backends can share one plan.
    """

    def __init__(self, data: Dataset, n_replicas: int = 2,
                 plan: FaultPlan | None = None,
                 retry: RetryPolicy = DEFAULT_RETRY,
                 name: str = "qdb"):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        super().__init__(
            {column: data.column(column) for column in data.column_names},
            schema=data.schema,
        )
        self.n_replicas = int(n_replicas)
        self.plan = plan if plan is not None else FaultPlan()
        self.retry = retry
        self.name = name
        self._degraded_pending = False
        self._any_faults = any(
            self.plan.has_faults(self._target(r))
            for r in range(self.n_replicas)
        )
        self.metrics = MetricsRegistry(owner="faults.qdb")
        self._c_reads = self.metrics.counter("faults.qdb.reads")
        self._c_failovers = self.metrics.counter("faults.qdb.failovers")
        self._c_rejected = self.metrics.counter(
            "faults.qdb.corrupt_reads_rejected"
        )
        self._c_blackouts = self.metrics.counter("faults.qdb.blackouts")

    def _target(self, replica: int) -> str:
        return f"{self.name}.replica:{replica}"

    def column(self, name: str):
        """Serve one column read through the replica set.

        The engine reads columns in two places: resolving a predicate
        mask (once per unique predicate, then cached) and evaluating
        non-COUNT aggregates.  A COUNT over an already-cached predicate
        therefore touches no replica at all and keeps working through a
        blackout, while SUM/AVG queries refuse — the degradation ordering
        DESIGN.md §7 documents.
        """
        self._c_reads.inc()
        if not self._any_faults:
            return super().column(name)
        failed: list[str] = []
        for replica in range(self.n_replicas):
            target = self._target(replica)
            op = self.plan.take_ops(target)
            result = resolve_delivery(self.plan, target, op, self.retry)
            if result.outcome is None:
                failed.append(f"{target}: no reply "
                              f"({result.attempts} attempts)")
                continue
            if result.outcome.corrupts:
                # Checksum mismatch: never serve corrupted microdata.
                self._c_rejected.inc()
                failed.append(f"{target}: checksum rejected delivery")
                continue
            if failed:
                self._degraded_pending = True
                self._c_failovers.inc()
                emit_decision(
                    "qdb", "replica-failover",
                    "; ".join(failed),
                    column=name, served_by=target,
                )
            return super().column(name)
        self._c_blackouts.inc()
        detail = "; ".join(failed)
        emit_decision("qdb", "refuse-backend-unavailable", detail,
                      column=name)
        raise BackendUnavailable(
            f"all {self.n_replicas} replicas failed reading column "
            f"{name!r} ({detail})"
        )

    def consume_degraded(self) -> bool:
        """True when some read since the last call required failover.

        The engine polls this after answering to mark the outgoing
        answer :class:`~repro.qdb.Degraded`.
        """
        flag = self._degraded_pending
        self._degraded_pending = False
        return flag
