"""Retry with timeout and exponential backoff — over *simulated* time.

No wall-clock sleeping happens anywhere in the fault layer: timeouts and
backoff pauses are accounted in simulated seconds so chaos runs are fast
and fully deterministic.  :func:`resolve_delivery` walks one operation's
retry schedule against a :class:`~repro.faults.plan.FaultPlan` and reports
whether (and on which attempt) a reply got through.

>>> from repro.faults.plan import Fault, FaultPlan
>>> plan = FaultPlan([Fault("drop", "pir.replica:0", probability=0.9)],
...                  seed=5)
>>> policy = RetryPolicy(max_attempts=4)
>>> result = resolve_delivery(plan, "pir.replica:0", op=0, policy=policy)
>>> result.attempts >= 1 and (result.delivered or result.attempts == 4)
True
>>> replay = resolve_delivery(plan, "pir.replica:0", 0, policy)   # pure
>>> (replay.attempts, replay.delivered) == (result.attempts, result.delivered)
True
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import FaultOutcome, FaultPlan

__all__ = ["DEFAULT_RETRY", "DeliveryResult", "RetryPolicy",
           "emit_decision", "resolve_delivery"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff schedule for one operation.

    Attempt ``a`` (0-based) waits up to ``timeout * backoff**a`` simulated
    seconds for a reply, then sleeps ``base_sleep * backoff**a`` before
    the next attempt.  Defaults match DESIGN.md §7.
    """

    max_attempts: int = 3
    timeout: float = 0.05
    backoff: float = 2.0
    base_sleep: float = 0.01

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.base_sleep < 0:
            raise ValueError("base_sleep must be >= 0")

    def timeout_for(self, attempt: int) -> float:
        """The reply deadline for 0-based *attempt*, in simulated seconds."""
        return self.timeout * self.backoff ** attempt

    def sleep_for(self, attempt: int) -> float:
        """Backoff pause after a failed 0-based *attempt*."""
        return self.base_sleep * self.backoff ** attempt


#: The documented default schedule (3 attempts: 50 ms, 100 ms, 200 ms).
DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class DeliveryResult:
    """How one operation's retry schedule played out.

    ``outcome`` is the :class:`FaultOutcome` of the attempt that finally
    delivered (its corruption flags still apply to the payload!), or None
    when every attempt timed out, dropped, or hit a crashed target.
    """

    outcome: FaultOutcome | None
    attempts: int
    timeouts: int
    simulated_seconds: float

    @property
    def delivered(self) -> bool:
        """True when some attempt got a reply through."""
        return self.outcome is not None


def resolve_delivery(plan: FaultPlan, target: str, op: int,
                     policy: RetryPolicy = DEFAULT_RETRY) -> DeliveryResult:
    """Walk the retry schedule for (*target*, *op*) against *plan*.

    Pure in (plan seed, target, op, policy): the attempt dimension is part
    of the fault-decision key, so resolving the same operation twice —
    or from a batch instead of a loop — yields the same result.

    A crashed target short-circuits after the first detecting timeout:
    ``crash`` is sticky, so further attempts cannot succeed by definition.
    """
    elapsed = 0.0
    timeouts = 0
    for attempt in range(policy.max_attempts):
        outcome = plan.outcome(target, op, attempt)
        deadline = policy.timeout_for(attempt)
        if outcome.crashed:
            return DeliveryResult(None, attempt + 1, timeouts + 1,
                                  elapsed + deadline)
        if outcome.dropped or outcome.latency > deadline:
            timeouts += 1
            elapsed += deadline + policy.sleep_for(attempt)
            continue
        return DeliveryResult(outcome, attempt + 1, timeouts,
                              elapsed + outcome.latency)
    return DeliveryResult(None, policy.max_attempts, timeouts, elapsed)


def emit_decision(component: str, decision: str, reason: str,
                  **attrs) -> None:
    """Log one degradation/recovery decision to the telemetry trace.

    Emits a zero-work ``faults.degrade`` span carrying the component, the
    decision taken, and the reason — ``repro telemetry report`` lists
    these so an incident is reconstructable end-to-end from the capture.
    A strict no-op when no telemetry session is active.
    """
    from ..telemetry import instrument as tele

    if not tele.enabled():
        return
    with tele.span("faults.degrade", component=component,
                   decision=decision, reason=reason, **attrs):
        pass
    tele.counter("faults.degrade_decisions").inc()
