"""repro — the three-dimensional database-privacy framework.

A full reproduction of Josep Domingo-Ferrer, *"A Three-Dimensional
Conceptual Framework for Database Privacy"* (SDM workshop at VLDB, LNCS
4721, 2007): the framework itself (:mod:`repro.core`) plus working
implementations of every technology class the paper scores —

* :mod:`repro.sdc` — statistical disclosure control (respondent privacy);
* :mod:`repro.ppdm` — non-cryptographic privacy-preserving data mining
  (owner privacy);
* :mod:`repro.smc` — cryptographic PPDM / secure multiparty computation;
* :mod:`repro.pir` — private information retrieval (user privacy);
* :mod:`repro.qdb` — interactive statistical databases with inference
  controls and the tracker attack;
* :mod:`repro.attacks` — the adversaries that measure each dimension;
* :mod:`repro.faults` — fault injection and graceful degradation for the
  PIR / SMC / qdb runtimes;
* :mod:`repro.data`, :mod:`repro.crypto`, :mod:`repro.mining` — substrates.

Quickstart::

    from repro.core import score_technologies, format_table2
    print(format_table2(score_technologies()))
"""

from . import attacks, core, crypto, data, faults, mining, pir, ppdm, qdb, sdc
from .core import (
    Grade,
    PrivacyDimension,
    format_table2,
    recommend,
    score_technologies,
)
from .data import Dataset, Schema, dataset_1, dataset_2

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "Grade",
    "PrivacyDimension",
    "Schema",
    "attacks",
    "core",
    "crypto",
    "data",
    "dataset_1",
    "dataset_2",
    "faults",
    "format_table2",
    "mining",
    "pir",
    "ppdm",
    "qdb",
    "recommend",
    "score_technologies",
    "sdc",
]
