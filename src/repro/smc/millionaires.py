"""Yao's millionaires' problem (the original 1982 small-range protocol).

Alice has wealth ``i``, Bob has wealth ``j``, both integers in ``[1, N]``;
they learn whether ``i >= j`` and nothing else.  The protocol underlies the
comparison steps of secure decision-tree induction (crypto PPDM).

Threat model: two semi-honest parties, computational privacy (RSA-style
public-key encryption over the small range).  Failure behaviour: none —
the output bit is unverifiable, so a deviating party can report either
answer.

Original protocol:

1. Bob picks a random x, computes ``k = Enc_A(x)`` and sends ``k - j``.
2. Alice computes ``y_u = Dec_A(k - j + u)`` for ``u = 1..N``, picks a
   random prime p, reduces ``z_u = y_u mod p``; if any two z differ by
   less than 2 she retries with another prime.
3. Alice sends ``z_1, .., z_i, z_{i+1}+1, .., z_N + 1`` (mod p).
4. Bob checks position j: it equals ``x mod p`` iff ``j <= i``.
"""

from __future__ import annotations

import random

from ..crypto import rsa
from ..crypto.numbertheory import random_prime
from .party import Transcript


def millionaires(
    alice_wealth: int,
    bob_wealth: int,
    max_wealth: int = 32,
    key_bits: int = 128,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> bool:
    """Return True iff ``alice_wealth >= bob_wealth``, via Yao's protocol."""
    if not (1 <= alice_wealth <= max_wealth and 1 <= bob_wealth <= max_wealth):
        raise ValueError(f"wealth values must be in [1, {max_wealth}]")
    rng = rng or random.Random(37)
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("millionaires")

    public, private = rsa.generate_keypair(key_bits, rng=rng)
    n = public.n
    i, j = alice_wealth, bob_wealth

    # Bob: random x, send Enc_A(x) - j.
    x = rng.randrange(2, n - max_wealth - 2)
    k = rsa.encrypt(public, x)
    transcript.record("Bob", "Alice", "blinded-cipher", (k - j) % n)
    m = (k - j) % n

    # Alice: decrypt the N candidates, reduce mod a prime with spacing >= 2.
    ys = [rsa.decrypt(private, (m + u) % n) for u in range(1, max_wealth + 1)]
    while True:
        p = random_prime(key_bits // 2, rng)
        zs = [y % p for y in ys]
        ok = all(
            abs(a - b) >= 2
            for idx, a in enumerate(zs)
            for b in zs[idx + 1:]
        )
        if ok:
            break
    payload = [
        zs[u - 1] % p if u <= i else (zs[u - 1] + 1) % p
        for u in range(1, max_wealth + 1)
    ]
    transcript.record("Alice", "Bob", "masked-candidates", (p, payload))

    # Bob: compare position j with x mod p.
    return payload[j - 1] == x % p
