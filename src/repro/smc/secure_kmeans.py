"""Secure k-means over horizontally partitioned data.

The canonical crypto-PPDM *clustering* task: several parties hold
disjoint record sets and want the joint k-means centroids.  Each Lloyd
iteration needs only, per cluster, the global sum of member vectors and
the global member count — both computed with the masked ring secure-sum
protocol, so no party's records (or even per-party cluster sizes) reach
the others.  Assignment happens locally against the shared centroids.

The output (the centroids) is public to all parties, and every party
knows exactly which computation ran — the paper's "owner privacy without
user privacy" profile once more.

Threat model: semi-honest parties; the masked ring sum is private
against any single party but not against a victim's colluding ring
neighbours (who can difference the partials).  Failure behaviour: a
party crashing mid-iteration aborts the run (the ring sum is
all-or-nothing); see :mod:`repro.faults` for the crash-surviving sum
variant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from .party import Transcript
from .secure_sum import ring_secure_sum

_SCALE = 1_000  # fixed-point scale for coordinate sums


@dataclass(frozen=True)
class SecureKMeansResult:
    """Outcome of the joint clustering."""

    centroids: np.ndarray
    iterations: int
    transcript: Transcript
    secure_sums: int

    def assign(self, matrix: np.ndarray) -> np.ndarray:
        """Cluster index of each row of *matrix*."""
        distances = np.linalg.norm(
            matrix[:, None, :] - self.centroids[None, :, :], axis=2
        )
        return np.argmin(distances, axis=1)


def _pad_to_three(values: list[int]) -> list[int]:
    # The ring protocol needs >= 3 parties; zero-valued dummies are safe.
    return values + [0] * max(0, 3 - len(values))


def secure_kmeans(
    parties: list[Dataset],
    columns: list[str],
    n_clusters: int,
    max_iter: int = 15,
    tol: float = 1e-4,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> SecureKMeansResult:
    """Run joint Lloyd iterations across *parties* on *columns*.

    Initial centroids are spread along the global bounding box, whose
    min/max are themselves approximated from secure sums of per-party
    extrema (coarse but record-free).
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    if not parties:
        raise ValueError("need at least one party")
    rng = rng or random.Random(97)
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("secure-kmeans")
    matrices = [p.matrix(columns) for p in parties]
    d = len(columns)
    sums_done = 0

    # Record-free initialization: average the per-party extrema.
    lo = np.zeros(d)
    hi = np.zeros(d)
    n_parties = len(parties)
    for j in range(d):
        lo_sum = ring_secure_sum(
            _pad_to_three([
                int(round(m[:, j].min() * _SCALE)) if m.size else 0
                for m in matrices
            ]),
            rng=rng, transcript=transcript,
        )
        hi_sum = ring_secure_sum(
            _pad_to_three([
                int(round(m[:, j].max() * _SCALE)) if m.size else 0
                for m in matrices
            ]),
            rng=rng, transcript=transcript,
        )
        sums_done += 2
        lo[j] = _signed(lo_sum) / _SCALE / n_parties
        hi[j] = _signed(hi_sum) / _SCALE / n_parties
    fractions = (np.arange(n_clusters) + 0.5) / n_clusters
    centroids = lo[None, :] + fractions[:, None] * (hi - lo)[None, :]

    iterations = 0
    for iterations in range(1, max_iter + 1):
        new_centroids = centroids.copy()
        for c in range(n_clusters):
            # Local assignment, then secure aggregation of sums and counts.
            local_sums = []
            local_counts = []
            for matrix in matrices:
                if matrix.size:
                    distances = np.linalg.norm(
                        matrix[:, None, :] - centroids[None, :, :], axis=2
                    )
                    members = matrix[np.argmin(distances, axis=1) == c]
                else:
                    members = matrix
                local_counts.append(members.shape[0])
                local_sums.append(
                    [int(round(v * _SCALE)) for v in members.sum(axis=0)]
                    if members.size else [0] * d
                )
            count = ring_secure_sum(
                _pad_to_three(local_counts), rng=rng, transcript=transcript
            )
            sums_done += 1
            if count == 0:
                continue
            for j in range(d):
                total = ring_secure_sum(
                    _pad_to_three([s[j] for s in local_sums]),
                    rng=rng, transcript=transcript,
                )
                sums_done += 1
                new_centroids[c, j] = _signed(total) / _SCALE / count
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tol:
            break
    return SecureKMeansResult(centroids, iterations, transcript, sums_done)


def _signed(value: int, modulus: int = 1 << 64) -> int:
    return value - modulus if value > modulus // 2 else value


def pooled_kmeans(
    data: Dataset,
    columns: list[str],
    n_clusters: int,
    max_iter: int = 15,
    tol: float = 1e-4,
) -> SecureKMeansResult:
    """Plaintext baseline with identical initialization and updates."""
    return secure_kmeans([data], columns, n_clusters, max_iter, tol)
