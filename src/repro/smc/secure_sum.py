"""Secure sum.

The canonical crypto-PPDM building block: n >= 3 parties compute the sum of
their private values revealing nothing but the result.  Two variants:

* :func:`ring_secure_sum` — the classic ring protocol: the initiator adds a
  random mask, each party adds its value, the initiator removes the mask.
  Every intermediate message is uniformly random modulo m.
* :func:`shares_secure_sum` — each party additively shares its value among
  all parties; everyone publishes the sum of the shares it holds.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..crypto.secret_sharing import additive_shares
from .party import Transcript

#: Default ring modulus (large enough for any benchmark sum).
DEFAULT_MODULUS = 1 << 64


def ring_secure_sum(
    values: Sequence[int],
    modulus: int = DEFAULT_MODULUS,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> int:
    """Ring-based secure sum of integer *values* (one per party)."""
    if len(values) < 3:
        raise ValueError("the ring protocol needs at least 3 parties for privacy")
    rng = rng or random.Random()
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("ring-sum")
    names = [f"P{i}" for i in range(len(values))]
    mask = rng.randrange(modulus)
    running = (mask + values[0]) % modulus
    transcript.record(names[0], names[1], "partial-sum", running)
    for i in range(1, len(values)):
        running = (running + values[i]) % modulus
        nxt = names[(i + 1) % len(values)]
        transcript.record(names[i], nxt, "partial-sum", running)
    return (running - mask) % modulus


def shares_secure_sum(
    values: Sequence[int],
    modulus: int = DEFAULT_MODULUS,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> int:
    """Additive-sharing secure sum (robust to one party dropping the ring)."""
    if len(values) < 2:
        raise ValueError("need at least 2 parties")
    rng = rng or random.Random()
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("shares-sum")
    n = len(values)
    names = [f"P{i}" for i in range(n)]
    held: list[list[int]] = [[] for _ in range(n)]
    for i, value in enumerate(values):
        shares = additive_shares(int(value), n, modulus, rng)
        for j, share in enumerate(shares):
            if i != j:
                transcript.record(names[i], names[j], "share", share)
            held[j].append(share)
    partials = [sum(h) % modulus for h in held]
    for j in range(n):
        for i in range(n):
            if i != j:
                transcript.record(names[j], names[i], "partial", partials[j])
    return sum(partials) % modulus


def secure_mean(
    values: Sequence[float],
    scale: int = 10**6,
    modulus: int = DEFAULT_MODULUS,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> float:
    """Secure mean via fixed-point encoding and the ring protocol."""
    encoded = [int(round(v * scale)) for v in values]
    total = ring_secure_sum(encoded, modulus, rng, transcript)
    if total > modulus // 2:
        total -= modulus
    return total / scale / len(values)
