"""Secure sum.

The canonical crypto-PPDM building block: n >= 3 parties compute the sum of
their private values revealing nothing but the result.  Two variants:

* :func:`ring_secure_sum` — the classic ring protocol: the initiator adds a
  random mask, each party adds its value, the initiator removes the mask.
  Every intermediate message is uniformly random modulo m.
* :func:`shares_secure_sum` — each party additively shares its value among
  all parties; everyone publishes the sum of the shares it holds.

Threat model: honest-but-curious parties; what leaks is exactly what the
:class:`~repro.smc.party.Transcript` records.  The ring tolerates no
collusion around a victim (its neighbours can difference the partials);
additive sharing tolerates up to n-2 colluders.

Failure behaviour: both protocols route every message through a
:class:`~repro.smc.party.Channel` and *use the delivered value*, so a
faulty channel (drops, crashes, corruption — see :mod:`repro.faults`)
either raises out of the protocol or corrupts the result exactly as it
would on a real wire.  The ring dies with its first unreachable party;
the shares variant survives pre-excluded parties, which is why the fault
layer falls back to it (:func:`repro.faults.resilient_secure_sum`).

Randomness: ``rng`` may be a :class:`random.Random`, an integer seed, a
``numpy.random.Generator``, or None — every stochastic step flows through
one explicit generator so runs are reproducible from a single seed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np

from ..crypto.secret_sharing import additive_shares
from .party import Channel, Transcript

#: Default ring modulus (large enough for any benchmark sum).
DEFAULT_MODULUS = 1 << 64

ProtocolRng = "random.Random | np.random.Generator | int | None"


class _GeneratorAdapter:
    """Expose ``randrange`` on a numpy Generator (what the crypto needs)."""

    __slots__ = ("_generator",)

    def __init__(self, generator: np.random.Generator):
        self._generator = generator

    def randrange(self, stop: int) -> int:
        # Rejection-sample from raw bytes: Generator.integers() is capped
        # at int64, but the ring modulus is 2**64 (and callers may go
        # bigger).  For power-of-two stops the mask makes this one draw.
        stop = int(stop)
        if stop <= 0:
            raise ValueError("randrange stop must be positive")
        nbits = (stop - 1).bit_length()
        if nbits == 0:
            return 0
        nbytes = (nbits + 7) // 8
        mask = (1 << nbits) - 1
        while True:
            value = int.from_bytes(self._generator.bytes(nbytes), "little")
            value &= mask
            if value < stop:
                return value


def resolve_protocol_rng(rng=None):
    """Accept Random / Generator / seed / None; return a ``randrange`` source.

    The protocols (and :func:`repro.crypto.additive_shares`) only ever
    call ``randrange``, so both stdlib and numpy generators — and a bare
    integer seed, the reproducible-chaos-run spelling — are accepted.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, (random.Random, random.SystemRandom)):
        return rng
    if isinstance(rng, np.random.Generator):
        return _GeneratorAdapter(rng)
    if isinstance(rng, (int, np.integer)):
        return _GeneratorAdapter(np.random.default_rng(int(rng)))
    if hasattr(rng, "randrange"):
        return rng
    raise TypeError(
        f"rng must be random.Random, numpy Generator, int seed, or None; "
        f"got {type(rng).__name__}"
    )


def _resolve_channel(channel: Channel | None,
                     transcript: Transcript | None) -> Channel:
    if channel is not None:
        return channel
    return Channel(transcript)


def ring_secure_sum(
    values: Sequence[int],
    modulus: int = DEFAULT_MODULUS,
    rng=None,
    transcript: Transcript | None = None,
    channel: Channel | None = None,
) -> int:
    """Ring-based secure sum of integer *values* (one per party).

    The returned value is computed from what the channel *delivered* back
    to the initiator, so wire faults propagate into the result instead of
    being silently ignored.
    """
    if len(values) < 3:
        raise ValueError("the ring protocol needs at least 3 parties for privacy")
    rng = resolve_protocol_rng(rng)
    channel = _resolve_channel(channel, transcript)
    channel.transcript.tag("ring-sum")
    names = [f"P{i}" for i in range(len(values))]
    mask = rng.randrange(modulus)
    running = (mask + values[0]) % modulus
    running = int(channel.send(names[0], names[1], "partial-sum", running))
    for i in range(1, len(values)):
        running = (running + values[i]) % modulus
        nxt = names[(i + 1) % len(values)]
        running = int(channel.send(names[i], nxt, "partial-sum", running))
    return (running - mask) % modulus


def shares_secure_sum(
    values: Sequence[int],
    modulus: int = DEFAULT_MODULUS,
    rng=None,
    transcript: Transcript | None = None,
    channel: Channel | None = None,
) -> int:
    """Additive-sharing secure sum (robust to one party dropping the ring).

    The result is reconstructed from the partials as *delivered to P0*
    (everyone publishes; P0 is the tallying observer), so channel faults
    on the publish round propagate like real wire faults.
    """
    if len(values) < 2:
        raise ValueError("need at least 2 parties")
    rng = resolve_protocol_rng(rng)
    channel = _resolve_channel(channel, transcript)
    channel.transcript.tag("shares-sum")
    n = len(values)
    names = [f"P{i}" for i in range(n)]
    held: list[list[int]] = [[] for _ in range(n)]
    for i, value in enumerate(values):
        shares = additive_shares(int(value), n, modulus, rng)
        for j, share in enumerate(shares):
            if i != j:
                share = int(channel.send(names[i], names[j], "share", share))
            held[j].append(share)
    partials = [sum(h) % modulus for h in held]
    received = list(partials)
    for j in range(n):
        for i in range(n):
            if i != j:
                delivered = int(
                    channel.send(names[j], names[i], "partial", partials[j])
                )
                if i == 0:
                    received[j] = delivered
    return sum(received) % modulus


def secure_mean(
    values: Sequence[float],
    scale: int = 10**6,
    modulus: int = DEFAULT_MODULUS,
    rng=None,
    transcript: Transcript | None = None,
    channel: Channel | None = None,
) -> float:
    """Secure mean via fixed-point encoding and the ring protocol."""
    encoded = [int(round(v * scale)) for v in values]
    total = ring_secure_sum(encoded, modulus, rng, transcript, channel)
    if total > modulus // 2:
        total -= modulus
    return total / scale / len(values)
