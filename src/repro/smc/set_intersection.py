"""Private set intersection via commutative encryption.

Two database owners learn which keys they share (e.g. common patients)
and nothing about the rest of each other's sets — the Agrawal–Evfimievski–
Srikant style PSI built on the SRA commutative cipher
(:mod:`repro.crypto.commutative`).

Threat model: two semi-honest owners; set *sizes* are revealed (the
protocol exchanges every double-encrypted key).  Failure behaviour:
none — a malicious party can over- or under-report matches undetected;
the protocol provides owner privacy, not verifiability.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from ..crypto.commutative import generate_key, hash_to_group, shared_modulus
from .party import Transcript


def private_set_intersection(
    set_a: Iterable[object],
    set_b: Iterable[object],
    modulus_bits: int = 96,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> set[object]:
    """Return the intersection, leaking only doubly-encrypted values.

    Protocol: both parties hash items into the group and encrypt with
    private exponents; each re-encrypts the other's singly-encrypted set;
    matches among the doubly-encrypted values are the intersection (the
    cipher commutes).  Alice learns which of *her* items matched.
    """
    rng = rng or random.Random(29)
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("set-intersection")
    p = shared_modulus(modulus_bits, rng)
    key_a = generate_key(p, rng)
    key_b = generate_key(p, rng)
    items_a = list(dict.fromkeys(set_a))
    items_b = list(dict.fromkeys(set_b))

    enc_a = [key_a.encrypt(hash_to_group(v, p)) for v in items_a]
    enc_b = [key_b.encrypt(hash_to_group(v, p)) for v in items_b]
    # Shuffle before sending so positions leak nothing.
    rng.shuffle(enc_b)
    transcript.record("Alice", "Bob", "enc-set", enc_a)
    transcript.record("Bob", "Alice", "enc-set", enc_b)

    double_a = [key_b.encrypt(c) for c in enc_a]  # Bob re-encrypts Alice's
    double_b = {key_a.encrypt(c) for c in enc_b}  # Alice re-encrypts Bob's
    transcript.record("Bob", "Alice", "double-enc-set", double_a)

    return {
        item for item, dd in zip(items_a, double_a) if dd in double_b
    }
