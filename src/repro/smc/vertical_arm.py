"""Secure association-rule mining over vertically partitioned data.

Vaidya–Clifton-style crypto PPDM for the market-basket setting the
paper's [25] addresses: two parties observe *different item columns* of
the same transactions (e.g. a supermarket and a pharmacy with a shared
customer base).  The support of an itemset spanning both parties is the
scalar product of their local indicator vectors, computed with the
Paillier protocol of :mod:`repro.smc.scalar_product` — neither party
learns which of the other's transactions contain what.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..mining.apriori import AssociationRule
from .party import Transcript
from .scalar_product import secure_scalar_product


@dataclass
class VerticalItemBase:
    """One party's item-indicator matrix over the shared transactions."""

    items: tuple[str, ...]
    indicators: np.ndarray  # (n_transactions, n_items) of 0/1

    @classmethod
    def from_transactions(
        cls, transactions: Sequence[frozenset[str]], items: Sequence[str]
    ) -> "VerticalItemBase":
        """Build the indicator matrix for *items* from transaction sets."""
        items = tuple(items)
        matrix = np.zeros((len(transactions), len(items)), dtype=np.int64)
        for row, basket in enumerate(transactions):
            for col, item in enumerate(items):
                if item in basket:
                    matrix[row, col] = 1
        return cls(items, matrix)

    @property
    def n_transactions(self) -> int:
        """Number of shared transactions."""
        return self.indicators.shape[0]

    def local_indicator(self, itemset: Sequence[str]) -> np.ndarray:
        """AND of this party's columns for its share of *itemset*."""
        mine = [i for i in itemset if i in self.items]
        if not mine:
            return np.ones(self.n_transactions, dtype=np.int64)
        columns = [self.indicators[:, self.items.index(i)] for i in mine]
        out = columns[0].copy()
        for col in columns[1:]:
            out &= col
        return out


class SecureVerticalMiner:
    """Joint support counting and rule checking across two parties.

    Cross-party supports go through the secure scalar product; supports of
    itemsets owned entirely by one party are computed locally (they reveal
    nothing of the other party's data).

    Threat model: the scalar-product protocol's — two semi-honest
    parties, computational privacy.  Failure behaviour: none — corrupted
    shares surface as wrong supports without detection.
    """

    def __init__(
        self,
        alice: VerticalItemBase,
        bob: VerticalItemBase,
        key_bits: int = 160,
        rng: random.Random | None = None,
    ):
        if alice.n_transactions != bob.n_transactions:
            raise ValueError("parties must share the same transactions")
        overlap = set(alice.items) & set(bob.items)
        if overlap:
            raise ValueError(f"items held by both parties: {sorted(overlap)}")
        self.alice = alice
        self.bob = bob
        self.n = alice.n_transactions
        self._rng = rng or random.Random(83)
        self._key_bits = key_bits
        self.transcript = Transcript().tag("vertical-arm")
        self.secure_products = 0

    def support(self, itemset: Sequence[str]) -> float:
        """Joint support of *itemset* (fraction of transactions)."""
        itemset = list(itemset)
        unknown = [
            i for i in itemset
            if i not in self.alice.items and i not in self.bob.items
        ]
        if unknown:
            raise KeyError(f"items held by neither party: {unknown}")
        a = self.alice.local_indicator(itemset)
        b = self.bob.local_indicator(itemset)
        crosses = any(i in self.alice.items for i in itemset) and any(
            i in self.bob.items for i in itemset
        )
        if not crosses:
            # Single-owner itemset: count locally.
            return float((a & b).sum()) / self.n
        shares = secure_scalar_product(
            a.tolist(), b.tolist(), self._key_bits, self._rng, self.transcript
        )
        self.secure_products += 1
        return shares.reveal() / self.n

    def check_rule(
        self,
        antecedent: Sequence[str],
        consequent: Sequence[str],
        min_support: float,
        min_confidence: float,
    ) -> AssociationRule | None:
        """Evaluate one candidate rule jointly; None when below thresholds."""
        ant = frozenset(antecedent)
        con = frozenset(consequent)
        support_all = self.support(sorted(ant | con))
        if support_all < min_support:
            return None
        support_ant = self.support(sorted(ant))
        if support_ant == 0:
            return None
        confidence = support_all / support_ant
        if confidence < min_confidence:
            return None
        return AssociationRule(ant, con, support_all, confidence)

    def mine_pairs(
        self, min_support: float, min_confidence: float
    ) -> list[AssociationRule]:
        """Mine all cross-party 2-item rules above the thresholds.

        Candidate pruning is local (each party drops its infrequent
        singletons before any joint computation), as in the original
        protocol.
        """
        frequent_a = [
            item for j, item in enumerate(self.alice.items)
            if self.alice.indicators[:, j].mean() >= min_support
        ]
        frequent_b = [
            item for j, item in enumerate(self.bob.items)
            if self.bob.indicators[:, j].mean() >= min_support
        ]
        rules: list[AssociationRule] = []
        for item_a in frequent_a:
            for item_b in frequent_b:
                support = self.support([item_a, item_b])
                if support < min_support:
                    continue
                for ant, con in (([item_a], [item_b]), ([item_b], [item_a])):
                    ant_support = self.support(ant)
                    if ant_support and support / ant_support >= min_confidence:
                        rules.append(AssociationRule(
                            frozenset(ant), frozenset(con),
                            support, support / ant_support,
                        ))
        rules.sort(key=lambda r: (-r.confidence, -r.support, str(r)))
        return rules
