"""Crypto PPDM: secure multiparty computation protocols with transcripts."""

from .millionaires import millionaires
from .naive_pooling import naive_pooled_datasets, naive_pooled_sum
from .party import Channel, Message, Transcript, plaintext_exposure
from .scalar_product import ScalarProductShares, secure_scalar_product
from .secure_id3 import CategoricalNode, SecureID3, pooled_id3
from .secure_kmeans import SecureKMeansResult, pooled_kmeans, secure_kmeans
from .secure_sum import (
    DEFAULT_MODULUS,
    resolve_protocol_rng,
    ring_secure_sum,
    secure_mean,
    shares_secure_sum,
)
from .set_intersection import private_set_intersection
from .vertical_arm import SecureVerticalMiner, VerticalItemBase
from .vertical_nb import (
    VerticalNbResult,
    secure_vertical_naive_bayes,
    vertical_nb_feature_order,
)

__all__ = [
    "CategoricalNode",
    "Channel",
    "DEFAULT_MODULUS",
    "Message",
    "ScalarProductShares",
    "SecureID3",
    "SecureKMeansResult",
    "SecureVerticalMiner",
    "Transcript",
    "VerticalItemBase",
    "VerticalNbResult",
    "millionaires",
    "naive_pooled_datasets",
    "naive_pooled_sum",
    "plaintext_exposure",
    "pooled_id3",
    "pooled_kmeans",
    "private_set_intersection",
    "resolve_protocol_rng",
    "ring_secure_sum",
    "secure_kmeans",
    "secure_mean",
    "secure_scalar_product",
    "secure_vertical_naive_bayes",
    "shares_secure_sum",
    "vertical_nb_feature_order",
]
