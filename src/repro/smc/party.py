"""Message-passing simulation for secure multiparty computation.

The paper's Section 4 argues that crypto PPDM gives owner privacy but no
user privacy because "all parties interactively co-operate to obtain the
result of the analysis" — the computation is known to everyone, and privacy
claims are claims about *what the exchanged messages reveal*.  Running the
protocols through an explicit :class:`Transcript` lets the framework layer
measure that leakage directly instead of asserting it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class Message:
    """One protocol message."""

    sender: str
    receiver: str
    tag: str
    payload: object

    def payload_numbers(self) -> list[float]:
        """Flatten any numeric content of the payload."""
        return list(_iter_numbers(self.payload))


def _payload_nbytes(value: object) -> int:
    """Wire-size estimate for a payload, in bytes.

    Integers are costed at their two's-complement width (floor 8 bytes,
    matching the protocols' 64-bit ring modulus); containers recurse.
    """
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(8, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_payload_nbytes(item) for item in value)
    if isinstance(value, dict):
        return sum(_payload_nbytes(item) for item in value.values())
    nbytes = getattr(value, "nbytes", None)  # ndarray without importing numpy
    return int(nbytes) if isinstance(nbytes, int) else 0


def _iter_numbers(value: object) -> Iterable[float]:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield float(value)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            yield from _iter_numbers(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _iter_numbers(item)


@dataclass
class Transcript:
    """An ordered record of every message exchanged in a protocol run.

    Besides the message list, the transcript keeps telemetry counters —
    message, payload-byte, and round totals, plus per-party-pair splits
    tagged with the protocol name — in a per-instance registry attached to
    the process-wide one, so an instrumented run's snapshot reports SMC
    traffic next to qdb and PIR metrics.
    """

    messages: list[Message] = field(default_factory=list)
    protocol: str = ""

    def __post_init__(self) -> None:
        self.metrics = MetricsRegistry(owner="smc")
        self._c_messages = self.metrics.counter("smc.messages")
        self._c_bytes = self.metrics.counter("smc.payload_bytes")
        self._c_rounds = self.metrics.counter("smc.rounds")
        self._last_sender: str | None = None

    def tag(self, protocol: str) -> "Transcript":
        """Label the run with its protocol name (first tag wins)."""
        if not self.protocol:
            self.protocol = protocol
        return self

    def record(self, sender: str, receiver: str, tag: str, payload: object) -> None:
        """Append a message (and account its traffic)."""
        self.messages.append(Message(sender, receiver, tag, payload))
        nbytes = _payload_nbytes(payload)
        self._c_messages.inc()
        self._c_bytes.inc(nbytes)
        pair = f"{self.protocol or 'untagged'}|{sender}->{receiver}"
        self.metrics.counter(f"smc.messages[{pair}]").inc()
        self.metrics.counter(f"smc.payload_bytes[{pair}]").inc(nbytes)
        # A round boundary every time the speaking party changes.
        if sender != self._last_sender:
            self._c_rounds.inc()
            self._last_sender = sender

    @property
    def message_count(self) -> int:
        """Messages recorded so far (same as ``len(transcript)``)."""
        return self._c_messages.value

    @property
    def payload_bytes(self) -> int:
        """Estimated total bytes on the wire."""
        return self._c_bytes.value

    @property
    def rounds(self) -> int:
        """Speaker changes observed (a proxy for communication rounds)."""
        return self._c_rounds.value

    def __len__(self) -> int:
        return len(self.messages)

    def per_pair_bytes(self) -> dict[tuple[str, str], int]:
        """Payload bytes per ``(sender, receiver)`` pair, from the messages.

        The same totals the per-pair registry counters accumulate, but
        computed from the message list — usable on an untagged or
        snapshot-free transcript, and what the observatory's imbalance
        detector cross-checks its counter parsing against.
        """
        traffic: dict[tuple[str, str], int] = {}
        for message in self.messages:
            key = (message.sender, message.receiver)
            traffic[key] = traffic.get(key, 0) + _payload_nbytes(
                message.payload
            )
        return traffic

    def visible_to(self, party: str) -> list[Message]:
        """Messages the named party saw (sent or received)."""
        return [
            m for m in self.messages if party in (m.sender, m.receiver)
        ]

    def numbers_seen_by(self, party: str, exclude_own: bool = True) -> list[float]:
        """Numeric values *party* observed in messages from other parties."""
        values: list[float] = []
        for message in self.messages:
            if message.receiver != party:
                continue
            if exclude_own and message.sender == party:
                continue
            values.extend(message.payload_numbers())
        return values

    def all_numbers(self) -> list[float]:
        """Every numeric value on the wire."""
        values: list[float] = []
        for message in self.messages:
            values.extend(message.payload_numbers())
        return values


class Channel:
    """A point-to-point message channel recording onto a transcript.

    Protocols route every payload through :meth:`send` and use the
    *returned* value as what the receiver saw.  This base channel is
    perfect — it delivers verbatim — so protocols behave exactly as they
    did when they recorded onto a bare :class:`Transcript`.  The fault
    layer subclasses it (:class:`repro.faults.FaultyChannel`) to drop,
    delay, corrupt, or byzantine-replace messages and to model crashed
    parties; routing through the return value is what lets those faults
    actually change protocol outcomes instead of just being logged.

    Threat model: the channel itself is the adversary interface — parties
    are honest-but-curious, the wire is where faults and tampering live.
    Failure behaviour: the base class never fails; subclasses raise
    :class:`~repro.faults.errors.MessageDropped` /
    :class:`~repro.faults.errors.PartyCrashed` from :meth:`send`.
    """

    def __init__(self, transcript: Transcript | None = None):
        self.transcript = transcript if transcript is not None else Transcript()

    def send(self, sender: str, receiver: str, tag: str,
             payload: object) -> object:
        """Deliver one message; returns the payload as received."""
        self.transcript.record(sender, receiver, tag, payload)
        return payload


def plaintext_exposure(
    transcript: Transcript, private_values: dict[str, Iterable[float]]
) -> float:
    """Fraction of parties' private values visible verbatim to other parties.

    ``private_values`` maps party name -> that party's raw private inputs.
    A value is exposed when some *other* party receives a message containing
    it exactly.  Secure protocols mask inputs with randomness, so exposure
    is ~0; a naive pooling protocol scores 1.0.  This is the transcript
    half of the owner-privacy meter.
    """
    exposed = 0
    total = 0
    parties = set(private_values)
    for owner, values in private_values.items():
        values = [float(v) for v in values]
        total += len(values)
        others = parties - {owner}
        seen: set[float] = set()
        for other in others:
            seen.update(transcript.numbers_seen_by(other))
        # Also count messages to parties outside private_values (e.g. a server).
        for message in transcript.messages:
            if message.sender == owner and message.receiver not in private_values:
                seen.update(message.payload_numbers())
        exposed += sum(1 for v in values if v in seen)
    if total == 0:
        return 0.0
    return exposed / total
