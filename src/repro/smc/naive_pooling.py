"""The insecure baseline: parties pool plaintext data.

Every secure protocol in this package is benchmarked against the thing it
replaces — sending the records in the clear to whoever runs the analysis.
Running the naive protocol through the same :class:`Transcript` machinery
makes the owner-privacy difference measurable (exposure 1.0 vs ~0.0).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..data.table import Dataset
from .party import Transcript


def naive_pooled_sum(
    values: Sequence[int], transcript: Transcript | None = None
) -> int:
    """Each party mails its raw value to P0, who sums in the clear."""
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("naive-pooling")
    for i, value in enumerate(values[1:], start=1):
        transcript.record(f"P{i}", "P0", "raw-value", int(value))
    return int(sum(values))


def naive_pooled_datasets(
    parties: list[Dataset], transcript: Transcript | None = None
) -> Dataset:
    """Every party ships its full table to P0; P0 returns the union."""
    if not parties:
        raise ValueError("need at least one party")
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("naive-pooling")
    pooled = parties[0]
    for i, party in enumerate(parties[1:], start=1):
        numeric_payload = [
            float(v)
            for name in party.numeric_columns()
            for v in party.column(name)
        ]
        transcript.record(f"P{i}", "P0", "raw-table", numeric_payload)
        pooled = pooled.vstack(party)
    return pooled
