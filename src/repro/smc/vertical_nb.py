"""Secure naive Bayes over vertically partitioned data.

The second PPDM partitioning model the literature built on scalar
products: **Alice** holds some feature columns of every record, **Bob**
holds other columns *and the class labels*.  They jointly train a
Gaussian naive Bayes classifier on the union of their features, with

* Bob's per-class statistics computed locally,
* Alice's per-class statistics computed through the Paillier secure
  scalar product of her (fixed-point) feature vectors — and their
  squares — against Bob's *encrypted class-indicator vectors*, so Alice
  never learns a label and Bob never sees a feature value.

Threat model: two semi-honest parties (the scalar-product protocol's);
per-class record counts become public with the model.  Failure
behaviour: none — a corrupted share yields wrong class statistics
silently.

The final model parameters are the protocol's output (public to both),
exactly the leakage class of Vaidya–Clifton-style vertical PPDM.
"""

from __future__ import annotations

import random

from dataclasses import dataclass

import numpy as np

from ..crypto import paillier
from ..data.table import Dataset
from ..mining.naive_bayes import GaussianNaiveBayes
from .party import Transcript

_SCALE = 1_000  # fixed-point scale for feature values


@dataclass(frozen=True)
class VerticalNbResult:
    """Outcome of the secure training protocol."""

    model: GaussianNaiveBayes
    classes: tuple
    transcript: Transcript
    scalar_products: int


def _encode(values: np.ndarray) -> list[int]:
    return [int(round(v * _SCALE)) for v in values]


def secure_vertical_naive_bayes(
    alice: Dataset,
    bob: Dataset,
    class_column: str,
    key_bits: int = 192,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> VerticalNbResult:
    """Train Gaussian naive Bayes across a vertical partition.

    ``alice`` and ``bob`` must be row-aligned; ``class_column`` lives in
    ``bob``.  Returns a fitted model over Alice's + Bob's numeric columns.
    """
    if alice.n_rows != bob.n_rows:
        raise ValueError("partitions must be row-aligned")
    if class_column not in bob.column_names:
        raise ValueError("the class column must belong to Bob")
    rng = rng or random.Random(71)
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("vertical-nb")

    labels = bob.column(class_column)
    classes = tuple(sorted(set(labels), key=repr))
    n = bob.n_rows
    alice_cols = list(alice.numeric_columns())
    bob_cols = [c for c in bob.numeric_columns() if c != class_column]

    public, private = paillier.generate_keypair(key_bits, rng)
    modulus = public.n
    scalar_products = 0

    # Bob -> Alice: encrypted class-indicator vectors (one per class).
    indicators: dict[object, list[int]] = {}
    for cls in classes:
        enc = [
            paillier.encrypt(public, 1 if labels[i] == cls else 0, rng)
            for i in range(n)
        ]
        indicators[cls] = enc
        transcript.record("Bob", "Alice", f"enc-indicator[{cls}]", enc)

    # Alice: for each of her columns and each class, homomorphically
    # accumulate sum(x * ind) and sum(x^2 * ind), blind, return to Bob.
    def blinded_product(enc_indicator: list[int], weights: list[int]) -> tuple[int, int]:
        acc = paillier.encrypt(public, 0, rng)
        for cipher, w in zip(enc_indicator, weights):
            acc = paillier.add(public, acc, paillier.mul_plain(public, cipher, w))
        blind = rng.randrange(modulus)
        return paillier.add_plain(public, acc, blind), blind

    stats: dict[tuple[str, object], tuple[float, float]] = {}
    class_counts = {cls: int(np.sum(labels == cls)) for cls in classes}
    for name in alice_cols:
        x = _encode(alice.column(name))
        x2 = [v * v for v in x]
        for cls in classes:
            c_sum, blind_sum = blinded_product(indicators[cls], x)
            c_sq, blind_sq = blinded_product(indicators[cls], x2)
            transcript.record("Alice", "Bob", f"blinded-sums[{name},{cls}]",
                              (c_sum, c_sq))
            scalar_products += 2
            # Bob decrypts; Alice sends the blinds over a share channel
            # (in the two-party setting the pair jointly unblinds; the
            # reconstruction is part of the public output statistics).
            total = (paillier.decrypt(private, c_sum) - blind_sum) % modulus
            total_sq = (paillier.decrypt(private, c_sq) - blind_sq) % modulus
            if total > modulus // 2:
                total -= modulus
            if total_sq > modulus // 2:
                total_sq -= modulus
            count = max(class_counts[cls], 1)
            mean = total / _SCALE / count
            var = max(total_sq / (_SCALE ** 2) / count - mean * mean, 1e-9)
            stats[(name, cls)] = (mean, var)

    # Bob computes his own columns' statistics locally (no protocol).
    for name in bob_cols:
        col = bob.column(name)
        for cls in classes:
            block = col[labels == cls]
            mean = float(block.mean()) if block.size else 0.0
            var = float(block.var()) + 1e-9 if block.size else 1e-9
            stats[(name, cls)] = (mean, var)

    # Assemble the public model.
    all_cols = alice_cols + bob_cols
    model = GaussianNaiveBayes()
    model._classes = np.asarray(classes, dtype=object)
    model._priors = np.array([class_counts[c] / n for c in classes])
    model._means = np.array(
        [[stats[(col, cls)][0] for col in all_cols] for cls in classes]
    )
    model._vars = np.array(
        [[stats[(col, cls)][1] for col in all_cols] for cls in classes]
    )
    return VerticalNbResult(model, classes, transcript, scalar_products)


def vertical_nb_feature_order(alice: Dataset, bob: Dataset, class_column: str) -> list[str]:
    """Column order the secure model expects at prediction time."""
    return list(alice.numeric_columns()) + [
        c for c in bob.numeric_columns() if c != class_column
    ]
