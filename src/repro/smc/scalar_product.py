"""Secure two-party scalar product via Paillier.

Alice holds vector x, Bob holds vector y; they compute x·y revealing
nothing else (up to the result itself).  Alice encrypts her entries; Bob
exploits the additive homomorphism to evaluate
``Enc(sum_i x_i * y_i + r)`` for a random blinding r, so Alice decrypts a
blinded result and the two end with additive shares of x·y.

Scalar products are the workhorse of vertically partitioned PPDM
(classification and association mining across two databases).

Threat model: two semi-honest parties; privacy is computational
(Paillier) and holds against each party alone — there is no third party
to collude with.  Failure behaviour: none built in — a party that
deviates or a corrupted message yields a wrong (blinded) share without
detection; the transcript-based exposure meter only measures *leakage*,
not integrity.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..crypto import paillier
from .party import Transcript


@dataclass(frozen=True)
class ScalarProductShares:
    """Additive shares of the scalar product (mod n)."""

    alice_share: int
    bob_share: int
    modulus: int

    def reveal(self) -> int:
        """Combine the shares (maps the upper half of Z_n to negatives)."""
        value = (self.alice_share + self.bob_share) % self.modulus
        if value > self.modulus // 2:
            value -= self.modulus
        return value


def secure_scalar_product(
    x: Sequence[int],
    y: Sequence[int],
    key_bits: int = 192,
    rng: random.Random | None = None,
    transcript: Transcript | None = None,
) -> ScalarProductShares:
    """Run the Paillier scalar-product protocol on integer vectors."""
    if len(x) != len(y):
        raise ValueError("vectors must have equal length")
    rng = rng or random.Random(17)
    transcript = transcript if transcript is not None else Transcript()
    transcript.tag("scalar-product")
    public, private = paillier.generate_keypair(key_bits, rng)
    n = public.n

    # Alice -> Bob: encryptions of her entries.
    encrypted_x = [paillier.encrypt(public, int(v), rng) for v in x]
    transcript.record("Alice", "Bob", "enc-vector", encrypted_x)

    # Bob: homomorphically accumulate sum x_i * y_i, blind with r.
    acc = paillier.encrypt(public, 0, rng)
    for cx, v in zip(encrypted_x, y):
        acc = paillier.add(public, acc, paillier.mul_plain(public, cx, int(v)))
    r = rng.randrange(n)
    blinded = paillier.add_plain(public, acc, r)
    transcript.record("Bob", "Alice", "blinded-product", blinded)

    # Alice decrypts the blinded product; shares are (dec, -r).
    alice_share = paillier.decrypt(private, blinded)
    return ScalarProductShares(alice_share, (-r) % n, n)
