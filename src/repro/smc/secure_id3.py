"""Secure ID3 over horizontally partitioned data (Lindell–Pinkas [18,19]).

Several parties hold disjoint record sets with the same categorical
attributes.  They jointly induce the ID3 decision tree of the *union* of
their data while no record ever leaves its owner's silo: every statistic
the algorithm needs — the class counts of the records reaching a node,
per (attribute value, class) — is computed with the secure-sum protocol,
so each party contributes only masked partial sums.

This follows the count-aggregation formulation standard in distributed
PPDM (Kantarcioglu–Clifton); the original Lindell–Pinkas paper further
hides the aggregate counts themselves with an x·log x subprotocol, but the
*output tree* already reveals the induced statistics, so the leakage class
is the same: nothing beyond the (tree, counts) output.  The paper's point
— that every party knows exactly which computation runs (no user privacy)
— is visible in the transcript: all parties observe every count query.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data.table import Dataset
from .party import Transcript
from .secure_sum import ring_secure_sum


@dataclass
class CategoricalNode:
    """A node of a categorical (multiway) decision tree."""

    prediction: object
    feature: str | None = None
    children: dict[object, "CategoricalNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True for terminal nodes."""
        return self.feature is None


def _entropy_from_counts(counts: Sequence[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    h = 0.0
    for c in counts:
        if c:
            p = c / total
            h -= p * math.log2(p)
    return h


class SecureID3:
    """Joint ID3 induction across horizontally partitioned datasets.

    Threat model: semi-honest parties running masked secure sums; each
    party learns the *global* counts (and hence the tree) but no other
    party's records.  Failure behaviour: the ring secure sum has no
    crash tolerance — a party failing mid-induction aborts the build;
    wrap the sums with :mod:`repro.faults` (``resilient_secure_sum``)
    when survivable aggregation matters more than exact membership.

    Parameters
    ----------
    features:
        Categorical attribute names (identical across parties).
    class_column:
        The categorical label column.
    max_depth, min_records:
        Standard stopping rules (applied to *global* secure counts).
    """

    def __init__(
        self,
        features: Sequence[str],
        class_column: str,
        max_depth: int = 4,
        min_records: int = 5,
    ):
        self.features = list(features)
        self.class_column = class_column
        self.max_depth = max_depth
        self.min_records = min_records
        self.transcript = Transcript().tag("secure-id3")
        self.count_queries = 0

    # -- secure aggregation ------------------------------------------------
    def _secure_counts(
        self,
        parties: list[Dataset],
        masks: list[np.ndarray],
        column: str,
        domain: Sequence[object],
        rng: random.Random,
    ) -> dict[object, int]:
        """Global value counts of *column* among records passing each mask."""
        counts = {}
        for value in domain:
            locals_ = [
                int(np.sum((party.column(column)[mask] == value)))
                for party, mask in zip(parties, masks)
            ]
            # Pad with zero-count dummy parties so the ring protocol's
            # 3-party minimum is met even for 2 data owners.
            while len(locals_) < 3:
                locals_.append(0)
            counts[value] = ring_secure_sum(
                locals_, rng=rng, transcript=self.transcript
            )
            self.count_queries += 1
        return counts

    def _domain(self, parties: list[Dataset], column: str) -> list[object]:
        values: set[object] = set()
        for party in parties:
            values.update(party.column(column))
        return sorted(values, key=repr)

    # -- induction ----------------------------------------------------------
    def fit(
        self, parties: list[Dataset], rng: random.Random | None = None
    ) -> CategoricalNode:
        """Induce the joint tree; records never leave their parties."""
        if not parties:
            raise ValueError("need at least one party")
        rng = rng or random.Random(41)
        masks = [np.ones(p.n_rows, dtype=bool) for p in parties]
        class_domain = self._domain(parties, self.class_column)
        feature_domains = {
            f: self._domain(parties, f) for f in self.features
        }
        self.root = self._build(
            parties, masks, list(self.features), class_domain, feature_domains,
            depth=0, rng=rng,
        )
        return self.root

    def _build(
        self,
        parties: list[Dataset],
        masks: list[np.ndarray],
        features: list[str],
        class_domain: list[object],
        feature_domains: dict[str, list[object]],
        depth: int,
        rng: random.Random,
    ) -> CategoricalNode:
        class_counts = self._secure_counts(
            parties, masks, self.class_column, class_domain, rng
        )
        total = sum(class_counts.values())
        majority = max(class_domain, key=lambda v: (class_counts[v], repr(v)))
        if (
            total < self.min_records
            or depth >= self.max_depth
            or not features
            or _entropy_from_counts(list(class_counts.values())) == 0.0
        ):
            return CategoricalNode(prediction=majority)

        base_h = _entropy_from_counts(list(class_counts.values()))
        best_gain, best_feature, best_partition = -1.0, None, None
        for feature in features:
            domain = feature_domains[feature]
            weighted = 0.0
            partition_counts = {}
            for value in domain:
                value_masks = [
                    mask & (party.column(feature) == value)
                    for party, mask in zip(parties, masks)
                ]
                counts = self._secure_counts(
                    parties, value_masks, self.class_column, class_domain, rng
                )
                subtotal = sum(counts.values())
                partition_counts[value] = subtotal
                if subtotal:
                    weighted += (
                        subtotal / total
                    ) * _entropy_from_counts(list(counts.values()))
            gain = base_h - weighted
            if gain > best_gain:
                best_gain, best_feature, best_partition = gain, feature, partition_counts
        if best_feature is None or best_gain <= 1e-12:
            return CategoricalNode(prediction=majority)

        node = CategoricalNode(prediction=majority, feature=best_feature)
        remaining = [f for f in features if f != best_feature]
        for value in feature_domains[best_feature]:
            if best_partition.get(value, 0) == 0:
                continue
            child_masks = [
                mask & (party.column(best_feature) == value)
                for party, mask in zip(parties, masks)
            ]
            node.children[value] = self._build(
                parties, child_masks, remaining, class_domain, feature_domains,
                depth + 1, rng,
            )
        return node

    def predict_one(self, record: dict[str, object]) -> object:
        """Classify a single record given as a name -> value mapping."""
        node = self.root
        while not node.is_leaf:
            child = node.children.get(record.get(node.feature))
            if child is None:
                break
            node = child
        return node.prediction

    def predict(self, data: Dataset) -> np.ndarray:
        """Classify every record of *data*."""
        out = np.empty(data.n_rows, dtype=object)
        for i in range(data.n_rows):
            record = dict(zip(data.column_names, data.row(i)))
            out[i] = self.predict_one(record)
        return out


def pooled_id3(
    data: Dataset,
    features: Sequence[str],
    class_column: str,
    max_depth: int = 4,
    min_records: int = 5,
) -> SecureID3:
    """Plaintext baseline: run the same induction on pooled data.

    Used by tests to confirm the secure tree equals the tree a trusted
    third party would have built — correctness of the secure protocol.
    """
    model = SecureID3(features, class_column, max_depth, min_records)
    model.fit([data])
    return model
