"""Adversaries measuring the three privacy dimensions."""

from .homogeneity import HomogeneityReport, homogeneity_attack
from .intersection import IntersectionReport, intersection_attack
from .msu import MsuReport, minimal_sample_uniques
from .linkage import (
    DistanceLinkageAttack,
    LinkageOutcome,
    ProbabilisticLinkageAttack,
    best_linkage_rate,
)
from .owner_extraction import (
    ExtractionReport,
    extraction_from_release,
    extraction_from_transcript,
    extraction_via_pir_download,
)
from .pir_isolation import (
    IsolatedRespondent,
    IsolationReport,
    isolation_attack,
)
from .sparse_reconstruction import (
    SparseDisclosureReport,
    dimensionality_sweep,
    reconstruction_attack,
)

__all__ = [
    "DistanceLinkageAttack",
    "ExtractionReport",
    "HomogeneityReport",
    "IntersectionReport",
    "IsolatedRespondent",
    "IsolationReport",
    "LinkageOutcome",
    "MsuReport",
    "ProbabilisticLinkageAttack",
    "SparseDisclosureReport",
    "best_linkage_rate",
    "dimensionality_sweep",
    "extraction_from_release",
    "homogeneity_attack",
    "intersection_attack",
    "minimal_sample_uniques",
    "extraction_from_transcript",
    "extraction_via_pir_download",
    "isolation_attack",
    "reconstruction_attack",
]
