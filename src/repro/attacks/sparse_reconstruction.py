"""The high-dimensional reconstruction disclosure attack ([11]).

Section 2's "subtler example" of owner privacy *without* respondent
privacy: the Agrawal–Srikant scheme publishes noise-added data plus the
noise distribution.  Reconstructing the *joint* distribution is exactly
what makes the release useful — but in high dimensions data are sparse,
so reconstructed probability mass concentrates in rare cells occupied by
single individuals.  An attacker who MAP-assigns each randomized record to
a grid cell then recovers original records to within cell resolution.

:func:`disclosure_rate` quantifies this; the bench sweeps dimensionality to
show the rate *rising with dimension* while the owner's protection (noise
on each release value) is unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass



from ..data.table import Dataset
from ..ppdm.randomization import NoiseModel
from ..ppdm.reconstruction import posterior_cells, reconstruct_joint


@dataclass(frozen=True)
class SparseDisclosureReport:
    """Outcome of the reconstruction attack."""

    n_records: int
    n_dims: int
    bins: int
    correct_cells: int
    rare_disclosures: int

    @property
    def cell_recovery_rate(self) -> float:
        """Fraction of records MAP-assigned to their true cell."""
        return self.correct_cells / self.n_records if self.n_records else 0.0

    @property
    def disclosure_rate(self) -> float:
        """Fraction of records recovered *and* alone in their cell.

        These are the respondents whose record the attacker effectively
        holds: the cell pins them uniquely at grid resolution.
        """
        return self.rare_disclosures / self.n_records if self.n_records else 0.0


def reconstruction_attack(
    original: Dataset,
    randomized: Dataset,
    noises: Sequence[NoiseModel],
    columns: Sequence[str],
    bins: int = 4,
    max_iter: int = 60,
) -> SparseDisclosureReport:
    """Run the full [11] pipeline: reconstruct, MAP-assign, count uniques."""
    x = original.matrix(list(columns))
    w = randomized.matrix(list(columns))
    dist = reconstruct_joint(w, noises, bins=bins, max_iter=max_iter)
    true_cells = [dist.cell_index(x[i]) for i in range(x.shape[0])]
    occupancy: dict[tuple, int] = {}
    for cell in true_cells:
        occupancy[cell] = occupancy.get(cell, 0) + 1
    assignments = posterior_cells(w, noises, dist)
    correct = 0
    rare = 0
    for i, (cell, _confidence) in enumerate(assignments):
        if cell == true_cells[i]:
            correct += 1
            if occupancy[cell] == 1:
                rare += 1
    return SparseDisclosureReport(
        n_records=x.shape[0],
        n_dims=len(columns),
        bins=bins,
        correct_cells=correct,
        rare_disclosures=rare,
    )


def dimensionality_sweep(
    make_population,
    randomize,
    dims: Sequence[int],
    bins: int = 4,
) -> list[SparseDisclosureReport]:
    """Run the attack across dimensionalities.

    ``make_population(d)`` returns an original :class:`Dataset` with
    numeric columns ``x0..x{d-1}``; ``randomize(data)`` returns
    ``(randomized, noise_models)`` in column order.
    """
    reports = []
    for d in dims:
        original = make_population(d)
        columns = [f"x{i}" for i in range(d)]
        randomized, noises = randomize(original)
        reports.append(
            reconstruction_attack(original, randomized, noises, columns, bins)
        )
    return reports
