"""The Section 3 PIR COUNT/AVG isolation attack, automated.

A user of a PIR-protected statistical interface over *unmasked* records
sweeps the quasi-identifier grid with private COUNT queries; every cell
with COUNT = 1 isolates one respondent, whose confidential value the
matching AVG query then reveals — all while the server, by the PIR
guarantee, cannot tell which cells were probed.  User privacy without
respondent privacy, exactly as the paper demonstrates on Dataset 2.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..pir.sql_bridge import PrivateAggregateIndex


@dataclass(frozen=True)
class IsolatedRespondent:
    """One respondent re-identified through the PIR interface."""

    cell_ranges: dict[str, tuple[float, float]]
    confidential_value: float


@dataclass(frozen=True)
class IsolationReport:
    """Outcome of a full grid sweep."""

    cells_probed: int
    population: int
    victims: tuple[IsolatedRespondent, ...]

    @property
    def disclosure_rate(self) -> float:
        """Fraction of the population isolated and disclosed."""
        return len(self.victims) / self.population if self.population else 0.0


def isolation_attack(
    index: PrivateAggregateIndex,
    population: int,
    rng: np.random.Generator | int | None = 0,
) -> IsolationReport:
    """Sweep every grid cell of *index* with COUNT, then AVG the singletons."""
    edges = index.edges
    columns = index.group_columns
    per_dim = [
        [(float(edges[c][j]), float(edges[c][j + 1]))
         for j in range(len(edges[c]) - 1)]
        for c in columns
    ]
    victims: list[IsolatedRespondent] = []
    probed = 0
    for combo in itertools.product(*per_dim):
        ranges: Mapping[str, tuple[float, float]] = dict(zip(columns, combo))
        probed += 1
        result = index.query(ranges, rng)
        if result.count == 1:
            victims.append(
                IsolatedRespondent(dict(ranges), result.average)
            )
    return IsolationReport(probed, population, tuple(victims))
