"""Minimal sample uniques (SUDA-style special-uniques risk).

A record is riskier the *smaller* the attribute subset on which it is
unique: being the only person with (zip=43012, age=87) is worse than
being unique only on the full key.  This module enumerates each record's
minimal unique attribute subsets (MSUs) and derives a SUDA-like per-record
risk score — a finer-grained respondent-risk signal than plain
k-anonymity, used by statistical offices to target suppression.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset


@dataclass(frozen=True)
class MsuReport:
    """Per-record minimal-unique-subset analysis."""

    columns: tuple[str, ...]
    minimal_uniques: tuple[tuple[tuple[str, ...], ...], ...]
    scores: np.ndarray

    @property
    def risky_records(self) -> np.ndarray:
        """Indices of records with at least one MSU."""
        return np.flatnonzero([len(m) > 0 for m in self.minimal_uniques])

    @property
    def mean_score(self) -> float:
        """Population-average risk score."""
        return float(self.scores.mean()) if self.scores.size else 0.0


def minimal_sample_uniques(
    data: Dataset,
    columns: Sequence[str] | None = None,
    max_subset: int = 3,
) -> MsuReport:
    """Enumerate minimal unique subsets up to size *max_subset*.

    The SUDA-like score of a record sums ``2 ** (max_subset - |M|)`` over
    its MSUs M: smaller subsets contribute exponentially more risk.
    """
    if columns is None:
        columns = list(data.quasi_identifiers) or list(data.column_names)
    columns = list(columns)
    if max_subset < 1:
        raise ValueError("max_subset must be >= 1")
    max_subset = min(max_subset, len(columns))
    n = data.n_rows

    unique_on: dict[tuple[str, ...], np.ndarray] = {}
    for size in range(1, max_subset + 1):
        for subset in itertools.combinations(columns, size):
            groups = data.group_by(list(subset))
            flags = np.zeros(n, dtype=bool)
            for indices in groups.values():
                if indices.size == 1:
                    flags[indices[0]] = True
            unique_on[subset] = flags

    minimal: list[tuple[tuple[str, ...], ...]] = []
    scores = np.zeros(n)
    for i in range(n):
        msus: list[tuple[str, ...]] = []
        for subset, flags in sorted(unique_on.items(), key=lambda kv: len(kv[0])):
            if not flags[i]:
                continue
            # Minimality: no already-found MSU may be a proper subset.
            if any(set(m) < set(subset) or set(m) == set(subset) for m in msus):
                continue
            # And no strict subset of this one may itself be unique.
            if any(
                unique_on.get(sub, np.zeros(n, dtype=bool))[i]
                for size in range(1, len(subset))
                for sub in itertools.combinations(subset, size)
            ):
                continue
            msus.append(subset)
        minimal.append(tuple(msus))
        scores[i] = sum(2.0 ** (max_subset - len(m)) for m in msus)
    return MsuReport(tuple(columns), tuple(minimal), scores)
