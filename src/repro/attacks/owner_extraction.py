"""The owner-privacy adversary: dataset-asset extraction.

Owner privacy is about the dataset as a *competitive asset* (the paper's
pharmaceutical company "unwilling to share those data with possible
competitors").  The adversary here is a competitor who observes everything
that leaves the owner's control — a masked release, protocol messages, or
PIR-retrievable content — and tries to rebuild the original records.

The meter is the fraction of original numeric cells the competitor
recovers within a tolerance (a fraction of each attribute's standard
deviation): 1.0 for a verbatim release, ~0 for crypto PPDM transcripts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..smc.party import Transcript, plaintext_exposure


@dataclass(frozen=True)
class ExtractionReport:
    """Outcome of the dataset-extraction adversary."""

    cells_total: int
    cells_recovered: int

    @property
    def extraction_rate(self) -> float:
        """Fraction of original cells the competitor now effectively holds."""
        return self.cells_recovered / self.cells_total if self.cells_total else 0.0

    @property
    def owner_privacy(self) -> float:
        """1 - extraction rate."""
        return 1.0 - self.extraction_rate


def extraction_from_release(
    original: Dataset,
    release: Dataset,
    columns: Sequence[str] | None = None,
    tolerance_sd: float = 0.25,
) -> ExtractionReport:
    """Competitor reads the release directly (row order is not assumed).

    A cell counts as recovered when the release contains, *in the same
    column*, a value within ``tolerance_sd`` standard deviations of it that
    can be matched by nearest-neighbour alignment of the two files.  For
    row-aligned masked releases this reduces to per-cell comparison; for
    shuffled or synthetic releases the matching step is the adversary's
    best effort.
    """
    if columns is None:
        columns = [
            c for c in original.numeric_columns()
            if c in release.column_names and release.is_numeric(c)
        ]
    columns = [
        c for c in columns
        if c in release.column_names
        and original.is_numeric(c) and release.is_numeric(c)
    ]
    total = original.n_rows * len(columns)
    if total == 0:
        return ExtractionReport(max(original.n_rows, 1) * max(len(columns), 1), 0)
    x = original.matrix(columns)
    y = release.matrix(columns)
    sd = x.std(axis=0)
    sd[sd == 0] = 1.0
    tol = tolerance_sd

    # Channel 1 (row-aligned releases): per-cell comparison at known
    # alignment — the standard masked-release setting.
    aligned_recovered = 0
    if release.n_rows == original.n_rows:
        aligned_recovered = int(np.sum(np.abs(x - y) / sd <= tol))

    # Channel 2 (any release): record-level matching — a record is
    # recovered when some release row is within tolerance on EVERY column
    # (so a shuffled verbatim release still scores 1.0).
    xn, yn = x / sd, y / sd
    matched_rows = 0
    if y.shape[0]:
        for i in range(xn.shape[0]):
            gaps = np.abs(yn - xn[i]).max(axis=1)
            if gaps.min() <= tol:
                matched_rows += 1
    recovered = max(aligned_recovered, matched_rows * len(columns))
    return ExtractionReport(total, recovered)


def extraction_from_transcript(
    transcript: Transcript, private_values: dict[str, Iterable[float]]
) -> ExtractionReport:
    """Competitor is a protocol participant reading the transcript."""
    values_total = sum(len(list(v)) for v in private_values.values())
    exposure = plaintext_exposure(transcript, private_values)
    return ExtractionReport(
        max(values_total, 1), int(round(exposure * values_total))
    )


def extraction_via_pir_download(
    original: Dataset, columns: Sequence[str] | None = None
) -> ExtractionReport:
    """Competitor downloads everything through an unrestricted PIR interface.

    PIR guarantees the *server* learns nothing about queries — nothing
    stops a client from privately retrieving every record.  An unmasked
    database behind PIR therefore offers the owner no protection at all:
    the extraction rate is 1 by construction.
    """
    if columns is None:
        columns = list(original.numeric_columns())
    total = original.n_rows * max(len(list(columns)), 1)
    return ExtractionReport(max(total, 1), total)
