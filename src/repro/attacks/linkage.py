"""Record-linkage adversaries (respondent privacy).

Two standard intruder models against a masked release:

* :class:`DistanceLinkageAttack` — the intruder knows (noisy) numeric
  quasi-identifier values of targets and links each to the nearest masked
  record (the model behind :func:`repro.sdc.risk.distance_linkage_rate`).
* :class:`ProbabilisticLinkageAttack` — Fellegi–Sunter-style: per-attribute
  agreement weights (log-likelihood ratios) estimated from value
  frequencies, summed into match scores; robust to categorical and
  generalized attributes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset

from ..sdc.risk import class_linkage_rate, distance_linkage_rate


@dataclass(frozen=True)
class LinkageOutcome:
    """Result of running a linkage adversary."""

    attempted: int
    correct: float

    @property
    def success_rate(self) -> float:
        """Expected fraction of correct re-identifications."""
        return self.correct / self.attempted if self.attempted else 0.0


class DistanceLinkageAttack:
    """Nearest-record linkage on numeric quasi-identifiers."""

    def __init__(self, columns: Sequence[str] | None = None,
                 intruder_noise_sd: float = 0.0):
        self.columns = columns
        self.intruder_noise_sd = intruder_noise_sd

    def run(
        self,
        original: Dataset,
        release: Dataset,
        rng: np.random.Generator | int | None = 0,
    ) -> LinkageOutcome:
        """Attack every record; returns the expected success."""
        rate = distance_linkage_rate(
            original, release, self.columns, self.intruder_noise_sd, rng
        )
        return LinkageOutcome(original.n_rows, rate * original.n_rows)


class ProbabilisticLinkageAttack:
    """Frequency-weighted exact-agreement linkage.

    Agreement on a rare value is strong evidence (weight -log2 f_v); the
    intruder links each target to the release record with the highest total
    weight, splitting ties uniformly.
    """

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("need at least one linkage column")
        self.columns = list(columns)

    def run(
        self,
        original: Dataset,
        release: Dataset,
        rng: np.random.Generator | int | None = 0,
    ) -> LinkageOutcome:
        """Attack every record of *original* against *release*."""
        if release.n_rows != original.n_rows:
            raise ValueError("probabilistic linkage expects row-aligned files")
        del rng  # expected-value computation, no sampling needed
        n = original.n_rows
        weights: dict[str, dict[object, float]] = {}
        for name in self.columns:
            col = release.column(name)
            values, counts = np.unique(col.astype(str), return_counts=True)
            weights[name] = {
                v: -math.log2(c / n) for v, c in zip(values, counts)
            }
        correct = 0.0
        release_cols = {
            name: release.column(name).astype(str) for name in self.columns
        }
        original_cols = {
            name: original.column(name).astype(str) for name in self.columns
        }
        for i in range(n):
            scores = np.zeros(n)
            for name in self.columns:
                target_value = original_cols[name][i]
                agree = release_cols[name] == target_value
                scores += np.where(agree, weights[name].get(target_value, 0.0), 0.0)
            best = scores.max()
            ties = np.flatnonzero(scores >= best - 1e-12)
            if i in ties:
                correct += 1.0 / ties.size
        return LinkageOutcome(n, correct)


def best_linkage_rate(
    original: Dataset,
    release: Dataset,
    numeric_columns: Sequence[str] | None = None,
    categorical_columns: Sequence[str] | None = None,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """The stronger of the available linkage adversaries.

    Falls back to the equivalence-class model when the release has no
    numeric quasi-identifiers left (generalized/suppressed files).
    """
    rates = []
    if release.n_rows == original.n_rows:
        rates.append(
            DistanceLinkageAttack(numeric_columns).run(
                original, release, rng
            ).success_rate
        )
        if categorical_columns:
            rates.append(
                ProbabilisticLinkageAttack(categorical_columns).run(
                    original, release, rng
                ).success_rate
            )
    else:
        rates.append(class_linkage_rate(release, numeric_columns))
    return max(rates) if rates else 0.0
