"""Record-linkage adversaries (respondent privacy).

Two standard intruder models against a masked release:

* :class:`DistanceLinkageAttack` — the intruder knows (noisy) numeric
  quasi-identifier values of targets and links each to the nearest masked
  record (the model behind :func:`repro.sdc.risk.distance_linkage_rate`).
* :class:`ProbabilisticLinkageAttack` — Fellegi–Sunter-style: per-attribute
  agreement weights (log-likelihood ratios) estimated from value
  frequencies, summed into match scores; robust to categorical and
  generalized attributes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset

from ..sdc.risk import class_linkage_rate, distance_linkage_rate


@dataclass(frozen=True)
class LinkageOutcome:
    """Result of running a linkage adversary."""

    attempted: int
    correct: float

    @property
    def success_rate(self) -> float:
        """Expected fraction of correct re-identifications."""
        return self.correct / self.attempted if self.attempted else 0.0


class DistanceLinkageAttack:
    """Nearest-record linkage on numeric quasi-identifiers."""

    def __init__(self, columns: Sequence[str] | None = None,
                 intruder_noise_sd: float = 0.0):
        self.columns = columns
        self.intruder_noise_sd = intruder_noise_sd

    def run(
        self,
        original: Dataset,
        release: Dataset,
        rng: np.random.Generator | int | None = 0,
    ) -> LinkageOutcome:
        """Attack every record; returns the expected success."""
        rate = distance_linkage_rate(
            original, release, self.columns, self.intruder_noise_sd, rng
        )
        return LinkageOutcome(original.n_rows, rate * original.n_rows)


class ProbabilisticLinkageAttack:
    """Frequency-weighted exact-agreement linkage.

    Agreement on a rare value is strong evidence (weight -log2 f_v); the
    intruder links each target to the release record with the highest total
    weight, splitting ties uniformly.
    """

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("need at least one linkage column")
        self.columns = list(columns)

    _CHUNK = 512  # target rows scored per block: caps memory at CHUNK x n

    def run(
        self,
        original: Dataset,
        release: Dataset,
        rng: np.random.Generator | int | None = 0,
    ) -> LinkageOutcome:
        """Attack every record of *original* against *release*.

        The score matrix is built one vectorized comparison per attribute
        (target codes against release codes) instead of per-record Python
        loops; targets are processed in chunks to bound memory at
        ``_CHUNK * n`` scores.
        """
        if release.n_rows != original.n_rows:
            raise ValueError("probabilistic linkage expects row-aligned files")
        del rng  # expected-value computation, no sampling needed
        n = original.n_rows
        # Per attribute: integer codes for the release values, the matching
        # code of each target value (-1 when absent from the release), and
        # the per-code agreement weight -log2(frequency).
        per_column: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for name in self.columns:
            rel = release.column(name).astype(str)
            values, rel_codes, counts = np.unique(
                rel, return_inverse=True, return_counts=True
            )
            weight = -np.log2(counts / n)
            orig = original.column(name).astype(str)
            pos = np.searchsorted(values, orig)
            pos = np.clip(pos, 0, values.size - 1)
            orig_codes = np.where(values[pos] == orig, pos, -1)
            per_column.append((rel_codes, orig_codes, weight))
        correct = 0.0
        for start in range(0, n, self._CHUNK):
            stop = min(start + self._CHUNK, n)
            scores = np.zeros((stop - start, n))
            for rel_codes, orig_codes, weight in per_column:
                codes = orig_codes[start:stop]
                agree = codes[:, None] == rel_codes[None, :]
                # codes == -1 never matches a release code, so the clip
                # below only feeds the weight lookup for masked-out rows.
                contrib = weight[np.clip(codes, 0, None)]
                scores += agree * contrib[:, None]
            best = scores.max(axis=1)
            ties = scores >= best[:, None] - 1e-12
            tie_counts = ties.sum(axis=1)
            rows = np.arange(stop - start)
            self_tied = ties[rows, np.arange(start, stop)]
            correct += float(np.sum(self_tied / tie_counts))
        return LinkageOutcome(n, correct)


def best_linkage_rate(
    original: Dataset,
    release: Dataset,
    numeric_columns: Sequence[str] | None = None,
    categorical_columns: Sequence[str] | None = None,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """The stronger of the available linkage adversaries.

    Falls back to the equivalence-class model when the release has no
    numeric quasi-identifiers left (generalized/suppressed files).
    """
    rates = []
    if release.n_rows == original.n_rows:
        rates.append(
            DistanceLinkageAttack(numeric_columns).run(
                original, release, rng
            ).success_rate
        )
        if categorical_columns:
            rates.append(
                ProbabilisticLinkageAttack(categorical_columns).run(
                    original, release, rng
                ).success_rate
            )
    else:
        rates.append(class_linkage_rate(release, numeric_columns))
    return max(rates) if rates else 0.0
