"""The homogeneity attack (paper, footnote 3).

k-Anonymity without p-sensitivity leaks: when every record of an
equivalence class shares a confidential value, an intruder who can place
a target in that class (from its key attributes) learns the value with
certainty — *no record linkage needed*.  This adversary quantifies that
channel, completing the respondent-privacy picture for k-anonymous
releases.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..data.table import Dataset
from ..sdc.kanonymity import equivalence_classes


@dataclass(frozen=True)
class HomogeneityReport:
    """Outcome of the homogeneity adversary."""

    population: int
    victims: int
    homogeneous_classes: int

    @property
    def disclosure_rate(self) -> float:
        """Fraction of respondents whose confidential value is learned."""
        return self.victims / self.population if self.population else 0.0


def homogeneity_attack(
    release: Dataset,
    confidential_attribute: str,
    quasi_identifiers: Sequence[str] | None = None,
) -> HomogeneityReport:
    """Count respondents disclosed through confidential-value homogeneity."""
    column = release.column(confidential_attribute)
    victims = 0
    homogeneous = 0
    for cls in equivalence_classes(release, quasi_identifiers):
        values = {column[i] for i in cls.indices}
        if len(values) == 1:
            homogeneous += 1
            victims += cls.size
    return HomogeneityReport(release.n_rows, victims, homogeneous)
