"""The multi-release intersection (composition) attack.

Two releases of the same population can each be k-anonymous and still
compose into re-identification: an intruder who knows a target is in both
intersects the target's equivalence classes across releases, and the
intersection can be far smaller than k.  This is the classic reason
one-shot guarantees do not survive repeated publication — and a further
illustration of the paper's point that respondent privacy must be argued
against the *whole* disclosure surface.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..sdc.kanonymity import equivalence_classes


@dataclass(frozen=True)
class IntersectionReport:
    """Outcome of composing two releases."""

    population: int
    min_class_a: int
    min_class_b: int
    singletons_after_intersection: int
    mean_intersection_size: float

    @property
    def reidentified_rate(self) -> float:
        """Fraction of respondents uniquely pinned by the composition."""
        return (
            self.singletons_after_intersection / self.population
            if self.population else 0.0
        )


def intersection_attack(
    release_a: Dataset,
    release_b: Dataset,
    quasi_identifiers_a: Sequence[str] | None = None,
    quasi_identifiers_b: Sequence[str] | None = None,
) -> IntersectionReport:
    """Compose two row-aligned releases of the same population.

    For each respondent, the intruder intersects the equivalence class
    containing them in release A with the one in release B; a singleton
    intersection re-identifies the respondent even when both releases are
    individually k-anonymous.
    """
    if release_a.n_rows != release_b.n_rows:
        raise ValueError("releases must cover the same (row-aligned) population")
    n = release_a.n_rows
    if n == 0:
        return IntersectionReport(0, 0, 0, 0, 0.0)
    classes_a = equivalence_classes(release_a, quasi_identifiers_a)
    classes_b = equivalence_classes(release_b, quasi_identifiers_b)
    member_a = np.empty(n, dtype=np.intp)
    for ci, cls in enumerate(classes_a):
        for i in cls.indices:
            member_a[i] = ci
    member_b = np.empty(n, dtype=np.intp)
    for ci, cls in enumerate(classes_b):
        for i in cls.indices:
            member_b[i] = ci
    sets_a = [frozenset(cls.indices) for cls in classes_a]
    sets_b = [frozenset(cls.indices) for cls in classes_b]
    singletons = 0
    total_size = 0
    for i in range(n):
        joint = sets_a[member_a[i]] & sets_b[member_b[i]]
        total_size += len(joint)
        if len(joint) == 1:
            singletons += 1
    return IntersectionReport(
        population=n,
        min_class_a=min(len(s) for s in sets_a),
        min_class_b=min(len(s) for s in sets_b),
        singletons_after_intersection=singletons,
        mean_intersection_size=total_size / n,
    )
