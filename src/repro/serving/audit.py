"""Cross-shard audit consistency: one shared overlap/sum-audit view.

Why sharding threatens the audit.  The engine's inference controls are
*stateful*: the sum audit refuses a query when its answer, combined with
every previously answered query, would make an individual record
deducible.  If each shard audited only its own history, an attacker
could split the Schlörer tracker across two sessions — padding query
``q(C1)`` through a session on shard A, tracker ``q(C1 AND NOT C2)``
through a session on shard B — and each shard would see an innocent
half.  Wang et al.'s inferential-privacy analysis (PAPERS.md) is
exactly this observation: disclosure composes across queries, so the
audit state must compose across whatever topology serves them.

The fix is a single :class:`CrossShardAuditView` shared by every shard:
a global answered-query history plus the shared stateful policies
(overlap control, sum audit), guarded by one re-entrant decision lock.
Each shard's engine carries a :class:`CrossShardAuditPolicy` adapter
that reviews candidates against the *global* state and commits answered
masks back to it, so the N-shard runtime's refusal decisions are
*decision-identical* to a single engine auditing the same total order
of queries — the equivalence the serving tests and the chaos gate's
split-tracker invariant assert.

Lock protocol: the shard worker holds :attr:`CrossShardAuditView.lock`
(re-entrant) across each ``ask_batch`` call, which serializes policy
decisions globally and keeps each query's review→transform pair atomic.
The audit history was always a serialized decision log — review order
*is* the privacy semantics — so concurrency lives in everything around
the decision: parsing, mask resolution caches per shard, PIR
retrievals, admission, telemetry.

Threat model: the adaptive querying user who splits a composed attack
across sessions, shards, or connections; the shards themselves are
trusted (they are one owner's infrastructure).  Failure behaviour: pure
refusal through the normal policy path — the adapter never raises on
privacy grounds, and a backend-refused query commits nothing, so a
faulted shard cannot poison the shared audit state.
"""

from __future__ import annotations

import threading

from ..qdb.engine import (
    LogEntry,
    OverlapControl,
    ProtectionPolicy,
    QueryHistory,
    SumAuditPolicy,
)

__all__ = ["CrossShardAuditPolicy", "CrossShardAuditView"]


class CrossShardAuditView:
    """The globally shared audit state all shards review against.

    Parameters
    ----------
    n_records:
        Population size (the shared history's mask width).
    max_overlap:
        When set, a global :class:`~repro.qdb.engine.OverlapControl`
        with this threshold joins the shared stack.
    sum_audit:
        When True (default), a global
        :class:`~repro.qdb.engine.SumAuditPolicy` joins the shared
        stack — the policy that catches split trackers.
    history_store:
        Backing store for the shared packed history (``"ram"`` or
        ``"memmap"``; None defers to ``REPRO_QDB_HISTORY_STORE``).
    """

    def __init__(self, n_records: int, *, max_overlap: int | None = None,
                 sum_audit: bool = True,
                 history_store: str | None = None):
        #: The global decision lock: shard workers hold it across each
        #: ``ask_batch`` so cross-shard decisions form one total order.
        self.lock = threading.RLock()
        self.n_records = n_records
        self.history = QueryHistory(n_records, store=history_store)
        self.policies: list[ProtectionPolicy] = []
        if max_overlap is not None:
            self.policies.append(OverlapControl(max_overlap))
        if sum_audit:
            self.policies.append(SumAuditPolicy())

    def review(self, query, mask, data) -> str | None:
        """First refusing shared policy's ``"<policy>: <why>"``, or None."""
        with self.lock:
            for policy in self.policies:
                reason = policy.review(query, mask, data, self.history)
                if reason is not None:
                    return f"{policy.name}: {reason}"
        return None

    def commit(self, query, answer, mask, data, rng):
        """Run the shared transforms and record the answered mask globally."""
        with self.lock:
            for policy in self.policies:
                answer = policy.transform(query, answer, mask, data, rng)
            if answer.ok:
                self.history.record(LogEntry(query, mask, True, answer.value))
        return answer

    @property
    def answered(self) -> int:
        """Answered queries committed to the shared history."""
        with self.lock:
            return len(self.history.answered_masks)


class CrossShardAuditPolicy(ProtectionPolicy):
    """Per-shard adapter delegating review/transform to the shared view.

    Installed last in each shard's policy stack.  The plan compiler
    treats it as an opaque policy (it is not one of the fusable exact
    types), so it executes as a plain delegating check in both the plan
    and legacy pipelines — decision-identical by construction.  Refusal
    reasons surface as ``"cross-shard-audit: <shared policy>: <why>"``.
    """

    name = "cross-shard-audit"

    def __init__(self, view: CrossShardAuditView):
        self.view = view

    def review(self, query, mask, data, history):
        return self.view.review(query, mask, data)

    def transform(self, query, answer, mask, data, rng):
        return self.view.commit(query, answer, mask, data, rng)
