"""The split tracker: Schlörer's attack distributed across shards.

The classical individual tracker (``repro.qdb.tracker``) issues all four
queries from one analyst.  The serving-era variant splits the query pair
across *sessions routed to different shards*: one session asks only the
innocent-looking padding queries ``q(C1)``, a second asks only the
tracker queries ``q(C1 AND NOT C2)``.  Each shard, auditing in
isolation, would see half an attack and answer everything — the
inferential-privacy failure mode of Wang et al. (PAPERS.md): disclosure
composes across queries even when no single auditor sees them all.

:func:`split_tracker_attack` runs this against a
:class:`~repro.serving.runtime.ServingRuntime` and reuses the qdb
tracker's :class:`~repro.qdb.tracker.TrackerResult` shape, so the same
assertions (``succeeded`` / ``exact`` / ``detail``) work for both the
single-engine and sharded variants.  Against a shared-audit runtime the
expected outcome under sum audit is refusal at the COUNT stage
(``detail == "padding or tracker COUNT refused"``: the sum audit treats
COUNT as a linear query, and the tracker COUNT pair is exactly the
deducibility pattern it refuses).  Against ``shared_audit=False`` the
attack succeeds exactly — the negative control proving the shared view
is load-bearing.

Queries are awaited sequentially, one at a time, so the observatory's
tracker-probe detector sees the probes in a deterministic span order —
the serve-smoke target asserts the alert fires over real HTTP.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..qdb.query import Aggregate, Not, Query
from ..qdb.tracker import TrackerResult, split_predicate
from .runtime import ServingRuntime

__all__ = ["split_tracker_attack"]


def split_tracker_attack(
    runtime: ServingRuntime,
    data,
    target_index: int,
    identifying_columns: Sequence[str],
    value_column: str,
    sessions: Sequence[str] | None = None,
) -> TrackerResult:
    """Run the cross-shard split tracker against *runtime* for one target.

    ``sessions`` are the two analyst identities ([padding, tracker]);
    when omitted they are chosen via
    :meth:`~repro.serving.runtime.ServingRuntime.distinct_shard_sessions`
    so the split provably crosses shards whenever the runtime has more
    than one.  Queries go through the public ``runtime.ask`` path — the
    attack holds no lock and sees exactly what any tenant sees.
    """
    if sessions is None:
        sessions = runtime.distinct_shard_sessions("split-tracker", 2)
    padding_session, tracker_session = sessions[0], sessions[1]
    c1, c2 = split_predicate(data, target_index, identifying_columns)
    tracker = c1 & Not(c2)
    queries = 0
    refusals = 0

    def ask_split(aggregate: Aggregate, column: str | None):
        # Padding via one session/shard, tracker via the other; awaited
        # sequentially so the cross-shard decision order is the issue
        # order (and the observatory sees deterministic probe spans).
        nonlocal queries, refusals
        values = []
        for session, predicate in (
            (padding_session, c1),
            (tracker_session, tracker),
        ):
            queries += 1
            answer = runtime.ask(session, Query(aggregate, column, predicate))
            if answer.refused or answer.value is None:
                refusals += 1
                values.append(None)
            else:
                values.append(answer.value)
        return values[0], values[1]

    count_c1, count_t = ask_split(Aggregate.COUNT, None)
    if count_c1 is None or count_t is None:
        return TrackerResult(
            False, None, None, None, queries, refusals,
            detail="padding or tracker COUNT refused",
        )
    inferred_count = count_c1 - count_t
    if round(inferred_count) != 1:
        return TrackerResult(
            False, inferred_count, None, None, queries, refusals,
            detail=f"target not isolated (inferred count {inferred_count:g})",
        )
    sum_c1, sum_t = ask_split(Aggregate.SUM, value_column)
    if sum_c1 is None or sum_t is None:
        return TrackerResult(
            False, inferred_count, None, None, queries, refusals,
            detail="padding or tracker SUM refused",
        )
    inferred_value = sum_c1 - sum_t
    true_value = float(data.column(value_column)[target_index])
    return TrackerResult(
        succeeded=True,
        inferred_count=inferred_count,
        inferred_value=inferred_value,
        true_value=true_value,
        queries_asked=queries,
        refusals=refusals,
    )
