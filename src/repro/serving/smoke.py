"""End-to-end smoke for the sharded serving runtime (``make serve-smoke``).

Boots the full serving stack in one process — sharded
:class:`~repro.serving.runtime.ServingRuntime`, resident observatory
service with its real HTTP/SSE surface, and the deterministic load
generator in runtime mode — then asserts the chain the ISSUE's
acceptance criterion names: concurrent mixed load flows through the
router and shard worker pools, the cross-shard *split* tracker cohort
is refused by the shared audit view, and the observatory raises the
critical ``tracker-probe`` alert **over real HTTP** (SSE), with the
usual live-vs-replay and OpenMetrics conformance proofs riding along.

Failure behaviour: the first violated property raises
:class:`ServingSmokeError` with enough detail to debug from CI output;
the HTTP server, SSE client, and runtime worker pools are torn down on
every path.
"""

from __future__ import annotations

import threading

__all__ = ["ServingSmokeError", "run_serving_smoke", "run_trace_smoke"]


class ServingSmokeError(AssertionError):
    """A serving smoke invariant failed."""


def run_serving_smoke(
    records: int = 150,
    seed: int = 3,
    shards: int | None = 4,
    threads: int = 4,
    ops: int = 96,
    profile: str = "mixed",
    echo=print,
) -> dict:
    """Boot runtime + observatory + loadgen; assert the pipeline over HTTP.

    The checks, in order: the SSE handshake arrives; the load
    generator's mixed traffic spreads over at least two shards (when
    ``shards >= 2``); the split-tracker cohort is *refused* (zero
    successful attacks, at least one refusal) even though its padding
    and tracker halves arrive via sessions on distinct shards; the
    critical ``tracker-probe`` alert crosses the SSE stream and equals
    the live observatory's alert list; ``/sessions`` shows the cohort's
    split session labels with refusals; ``/metrics`` strictly parses;
    and the ``/incident`` bundle's replay proof verifies.
    """
    from ..telemetry import instrument
    from ..telemetry.observatory.exporters import (
        OPENMETRICS_CONTENT_TYPE,
        parse_openmetrics,
    )
    from ..telemetry.observatory.rules import Alert
    from ..telemetry.observatory.service.loadgen import LoadGenerator
    from ..telemetry.observatory.service.server import (
        ObservatoryService,
        _SseCollector,
        _fetch_json,
        _fetch_metrics,
        create_server,
    )
    from ..data import patients
    from .runtime import ServingRuntime

    pop = patients(records, seed=seed)
    pir_values = [int(v) for v in pop["blood_pressure"][:16]]

    service = ObservatoryService()
    server = create_server(service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    server_thread = threading.Thread(
        target=server.serve_forever, name="serving-smoke-http", daemon=True
    )
    summary: dict = {}
    with instrument.session() as tracer:
        service.attach(tracer)
        server_thread.start()
        collector = _SseCollector(f"{base}/events")
        runtime = ServingRuntime(
            pop, shards=shards, sum_audit=True, pir_values=pir_values,
            queue_depth=max(256, ops * 2),
        )
        shards = runtime.n_shards  # None resolved via REPRO_SERVING_SHARDS
        try:
            collector.start()
            if not collector.hello_seen.wait(timeout=10.0):
                raise ServingSmokeError(
                    f"SSE handshake did not arrive (client error: "
                    f"{collector.error})"
                )
            generator = LoadGenerator(
                records=records, seed=seed, threads=threads, ops=ops,
                profile=profile, tracker_cohort=True, runtime=runtime,
            )
            report = generator.run()
            runtime.drain()
            stats = runtime.stats()
            echo(
                f"load: {report['ops']} ops over {report['threads']} threads "
                f"-> {stats['n_shards']} shards "
                f"({report['qdb_ops']} qdb / {report['pir_ops']} pir, "
                f"{report['refusals']} refusals, cohort "
                f"{report['cohort']['attacks']} split attacks via "
                f"{generator.cohort_sessions})"
            )
            metrics_text, metrics_type = _fetch_metrics(base)
            sessions_payload = _fetch_json(f"{base}/sessions")
            cohort_timelines = [
                _fetch_json(f"{base}/sessions/{label}")
                for label in generator.cohort_sessions
            ]
            bundle = _fetch_json(f"{base}/incident")
        finally:
            runtime.close()
            service.close()
            collector.join(timeout=10.0)
            server.shutdown()
            server.server_close()

        if collector.error:
            raise ServingSmokeError(f"SSE client failed: {collector.error}")
        if collector.is_alive():
            raise ServingSmokeError("SSE client never saw the bye frame")

        busy_shards = [s["shard"] for s in stats["shards"] if s["processed"]]
        if shards >= 2 and len(busy_shards) < 2:
            raise ServingSmokeError(
                f"load did not spread across shards (busy: {busy_shards}, "
                f"per-shard: {stats['shards']})"
            )
        cohort = report["cohort"]
        if cohort["succeeded"] != 0:
            raise ServingSmokeError(
                f"split tracker succeeded {cohort['succeeded']} time(s) "
                f"despite the shared cross-shard audit"
            )
        if cohort["refusals"] < 1:
            raise ServingSmokeError(
                "split tracker cohort saw no refusals; the shared sum "
                "audit should have refused its COUNT probes"
            )
        sse_alerts = collector.of_type("alert")
        live_alerts = [
            alert for alert in service.observatory.alerts
            if alert.source == "span"
        ]
        if [Alert.from_span_attrs(a) for a in sse_alerts] != live_alerts:
            raise ServingSmokeError(
                f"SSE alert stream diverged from the live observatory: "
                f"{len(sse_alerts)} over SSE vs {len(live_alerts)} live"
            )
        tracker_hits = [
            a for a in sse_alerts
            if a["alert"] == "tracker-probe" and a["severity"] == "critical"
        ]
        if not tracker_hits:
            raise ServingSmokeError(
                f"cross-shard split tracker produced no tracker-probe alert "
                f"over SSE (alerts seen: {[a['alert'] for a in sse_alerts]})"
            )
        if metrics_type != OPENMETRICS_CONTENT_TYPE:
            raise ServingSmokeError(
                f"/metrics content type {metrics_type!r} != "
                f"{OPENMETRICS_CONTENT_TYPE!r}"
            )
        parse_openmetrics(metrics_text)
        labels = [s["session"] for s in sessions_payload["sessions"]]
        missing = [
            label for label in generator.cohort_sessions
            if label not in labels
        ]
        if missing:
            raise ServingSmokeError(
                f"cohort split sessions {missing} missing from /sessions "
                f"(saw {labels})"
            )
        if not any(t["refusals"] >= 1 for t in cohort_timelines):
            raise ServingSmokeError(
                "no cohort split session shows refusals in its timeline"
            )
        if not bundle["replay"]["verified"]:
            raise ServingSmokeError(
                f"incident bundle replay proof failed: "
                f"{bundle['replay']['detail']}"
            )
        points = collector.of_type("point")
        if not points:
            raise ServingSmokeError("no point frames arrived over SSE")

        summary = {
            "ops": report["ops"],
            "shards": shards,
            "busy_shards": busy_shards,
            "overload_refusals": stats["overload_refusals"],
            "sse_frames": len(collector.frames),
            "points": len(points),
            "alerts": [a["alert"] for a in sse_alerts],
            "tracker_alerts": len(tracker_hits),
            "cohort_sessions": list(generator.cohort_sessions),
            "sessions": labels,
            "bundle_spans": bundle["spans"],
            "replay": bundle["replay"]["detail"],
        }
    echo(
        f"serving smoke OK: {summary['ops']} ops over "
        f"{len(summary['busy_shards'])}/{shards} busy shards, "
        f"{summary['tracker_alerts']} tracker-probe alert(s) over SSE, "
        f"cohort split across {summary['cohort_sessions']}, "
        f"{summary['replay']}"
    )
    return summary


def _require_complete_waterfall(info: dict, what: str) -> None:
    """Assert one reconstructed waterfall carries the full request path."""
    from ..telemetry.requesttrace import TRACE_STAGES

    missing = [stage for stage in TRACE_STAGES if stage not in info["stages"]]
    if missing:
        raise ServingSmokeError(
            f"{what} waterfall {info['trace_id']} is missing stages "
            f"{missing} (has {sorted(info['stages'])})"
        )
    if not isinstance(info["shard"], int) or info["shard"] < 0:
        raise ServingSmokeError(
            f"{what} waterfall {info['trace_id']} has no shard id "
            f"(shard={info['shard']!r})"
        )
    if not isinstance(info["queue_depth"], int) or info["queue_depth"] < 0:
        raise ServingSmokeError(
            f"{what} waterfall {info['trace_id']} has no queue depth "
            f"(queue_depth={info['queue_depth']!r})"
        )
    if not info["outcome"]:
        raise ServingSmokeError(
            f"{what} waterfall {info['trace_id']} has no decision outcome"
        )
    linked = [s for s in info["linked"] if s["name"] == "qdb.query"]
    if not linked:
        raise ServingSmokeError(
            f"{what} waterfall {info['trace_id']} has no linked qdb.query "
            f"span (linked: {[s['name'] for s in info['linked']]})"
        )


def run_trace_smoke(
    records: int = 150,
    seed: int = 3,
    shards: int | None = 4,
    threads: int = 4,
    ops: int = 96,
    out: str | None = None,
    echo=print,
) -> dict:
    """The request-tracing gate (``make trace-smoke``).

    A serve-smoke variant centred on the trace substrate: the same full
    stack (sharded runtime, observatory service over real HTTP/SSE,
    runtime-mode load generator with the split-tracker cohort) runs
    with a JSONL capture attached, and afterwards the capture alone
    must reconstruct a **complete 7-stage waterfall** — every frozen
    stage, the shard id, the queue depth at enqueue, and the decision
    outcome, plus the linked ``qdb.query`` span — for BOTH an answered
    query AND a cohort query refused by the cross-shard audit.  On the
    wire, ``trace`` frames must arrive over SSE (schema v2 handshake)
    and ``/traces`` must serve the same trace ids.
    """
    import tempfile
    from pathlib import Path

    from ..telemetry import instrument
    from ..telemetry.report import read_trace
    from ..telemetry.requesttrace import (
        format_waterfall,
        request_records,
        waterfall,
    )
    from ..telemetry.observatory.service.loadgen import LoadGenerator
    from ..telemetry.observatory.service.server import (
        SSE_SCHEMA_VERSION,
        ObservatoryService,
        _SseCollector,
        _fetch_json,
        create_server,
    )
    from ..data import patients
    from .runtime import ServingRuntime

    trace_path = Path(out) if out else Path(
        tempfile.gettempdir()) / "repro-trace-smoke.jsonl"
    pop = patients(records, seed=seed)
    pir_values = [int(v) for v in pop["blood_pressure"][:16]]

    service = ObservatoryService()
    server = create_server(service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    server_thread = threading.Thread(
        target=server.serve_forever, name="trace-smoke-http", daemon=True
    )
    with instrument.session(trace_path) as tracer:
        service.attach(tracer)
        server_thread.start()
        collector = _SseCollector(f"{base}/events")
        runtime = ServingRuntime(
            pop, shards=shards, sum_audit=True, pir_values=pir_values,
            queue_depth=max(256, ops * 2),
        )
        shards = runtime.n_shards
        try:
            collector.start()
            if not collector.hello_seen.wait(timeout=10.0):
                raise ServingSmokeError(
                    f"SSE handshake did not arrive (client error: "
                    f"{collector.error})"
                )
            generator = LoadGenerator(
                records=records, seed=seed, threads=threads, ops=ops,
                profile="mixed", tracker_cohort=True, runtime=runtime,
            )
            report = generator.run()
            runtime.drain()
            traces_payload = _fetch_json(f"{base}/traces")
        finally:
            runtime.close()
            service.close()
            collector.join(timeout=10.0)
            server.shutdown()
            server.server_close()
        if collector.error:
            raise ServingSmokeError(f"SSE client failed: {collector.error}")
        cohort_sessions = list(generator.cohort_sessions)

    # Reconstruct everything from the JSONL capture alone.
    spans = read_trace(trace_path)
    requests = request_records(spans)
    if not requests:
        raise ServingSmokeError("capture has no serving.request spans")

    (hello,) = collector.of_type("hello")
    if hello["schema"] != SSE_SCHEMA_VERSION:
        raise ServingSmokeError(
            f"SSE handshake schema {hello['schema']} != "
            f"{SSE_SCHEMA_VERSION}"
        )
    if "trace" not in hello["events"]:
        raise ServingSmokeError(
            f"handshake does not announce trace frames: {hello['events']}"
        )
    sse_traces = collector.of_type("trace")
    if not sse_traces:
        raise ServingSmokeError("no trace frames arrived over SSE")

    answered = next(
        (r for r in requests
         if r["attrs"].get("kind") == "qdb"
         and r["attrs"].get("outcome") == "answered"),
        None,
    )
    if answered is None:
        raise ServingSmokeError("no answered qdb request in the capture")
    refused = next(
        (r for r in requests
         if r["attrs"].get("session") in cohort_sessions
         and r["attrs"].get("outcome") == "refused"),
        None,
    )
    if refused is None:
        raise ServingSmokeError(
            f"no refused split-tracker request in the capture (cohort "
            f"sessions: {cohort_sessions})"
        )

    checks = []
    for what, record in (("answered", answered),
                         ("split-tracker refused", refused)):
        trace_id = record["attrs"]["trace_id"]
        info = waterfall(spans, trace_id)
        _require_complete_waterfall(info, what)
        if what.endswith("refused"):
            linked = [s for s in info["linked"] if s["name"] == "qdb.query"]
            if not any(s["attrs"].get("refused") for s in linked):
                raise ServingSmokeError(
                    f"refused waterfall {trace_id} links no refused "
                    f"qdb.query span"
                )
        sse_ids = {frame.get("trace_id") for frame in sse_traces}
        if trace_id not in sse_ids:
            raise ServingSmokeError(
                f"{what} trace {trace_id} never crossed the SSE stream"
            )
        http_ids = {t.get("trace_id") for t in traces_payload["traces"]}
        if trace_id not in http_ids:
            raise ServingSmokeError(
                f"{what} trace {trace_id} missing from /traces"
            )
        echo(format_waterfall(spans, trace_id))
        echo("")
        checks.append({
            "trace_id": trace_id,
            "outcome": info["outcome"],
            "shard": info["shard"],
            "queue_depth": info["queue_depth"],
            "stages": sorted(info["stages"]),
            "linked_spans": len(info["linked"]),
        })

    summary = {
        "ops": report["ops"],
        "shards": shards,
        "capture": str(trace_path),
        "traced_requests": len(requests),
        "sse_trace_frames": len(sse_traces),
        "http_traces": traces_payload["count"],
        "cohort_sessions": cohort_sessions,
        "waterfalls": checks,
    }
    echo(
        f"trace smoke OK: {len(requests)} traced requests, "
        f"{len(sse_traces)} trace frames over SSE, complete 7-stage "
        f"waterfalls for {checks[0]['trace_id']} (answered) and "
        f"{checks[1]['trace_id']} (split-tracker refused)"
    )
    return summary
