"""Sharded scale-out serving for the query-controlled engine.

The package that turns the single-process engine into a multi-tenant
runtime: consistent-hash session routing (:mod:`.router`), bounded
queues + token-bucket admission with typed, audited overload refusals
(:mod:`.admission`), per-shard engine/PIR worker pools
(:mod:`.runtime`), the shared cross-shard audit view that keeps split
tracker attacks refused (:mod:`.audit`), the attack itself
(:mod:`.attack`), and the end-to-end HTTP smoke (:mod:`.smoke`).
"""

from .admission import (
    ADMISSION_PREFIX,
    AdmissionController,
    FakeClock,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    TokenBucket,
)
from .attack import split_tracker_attack
from .audit import CrossShardAuditPolicy, CrossShardAuditView
from .router import ConsistentHashRouter
from .runtime import ServingRuntime

__all__ = [
    "ADMISSION_PREFIX",
    "AdmissionController",
    "ConsistentHashRouter",
    "CrossShardAuditPolicy",
    "CrossShardAuditView",
    "FakeClock",
    "REASON_QUEUE_FULL",
    "REASON_RATE_LIMITED",
    "ServingRuntime",
    "TokenBucket",
    "split_tracker_attack",
]
