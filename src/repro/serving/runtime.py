"""The sharded serving runtime: router + shard worker pools + admission.

Topology.  :class:`ServingRuntime` multiplexes many concurrent sessions
over N shards.  Each shard owns a full :class:`~repro.qdb.engine.
StatisticalDatabase` over the *whole* population (sharding rows would
change statistical answers) plus an optional slice of the PIR block
array, and drains a bounded ingress queue with a small worker pool that
dispatches through ``ask_batch``.  A :class:`~repro.serving.router.
ConsistentHashRouter` pins every session to one shard; the same ring
assigns PIR blocks to owners, so a batched retrieval scatters to the
owning shards and gathers the decoded values back in order.

Privacy under sharding.  All shards review against one
:class:`~repro.serving.audit.CrossShardAuditView` (shared global history
+ overlap/sum-audit policies) and hold its re-entrant lock across each
``ask_batch``, so the N-shard runtime's refusal decisions are
*decision-identical* to a single engine auditing the same total order of
queries — a tracker attack split across sessions on different shards is
refused exactly as if one analyst had issued it alone.  Constructing the
runtime with ``shared_audit=False`` gives each shard an isolated audit
(the negative control: the split tracker then *succeeds* at N >= 2,
which is how the tests demonstrate the shared view is load-bearing).

Overload.  Admission happens before any queue touch: a session over its
token-bucket rate, or a full shard ingress queue, yields a typed
:class:`~repro.qdb.engine.Refusal` whose reason carries the frozen
``"admission: "`` prefix, plus a ``faults.degrade`` audit span
(component ``"serving"``, decision ``"refuse-overload"``) — overload is
auditable like any other degradation.  PIR retrievals instead *block*
on a full queue: a refusal there would leak which shard (hence roughly
``log2(shards)`` bits of the requested indices) was hot, so PIR
backpressure is latency, never a typed refusal (DESIGN.md §12).

Failure behaviour: a shard whose backend is down answers with
``"backend: ..."`` refusals for its own sessions only; backend-refused
queries never commit audit state, so the shared view stays consistent
and sessions on healthy shards see pristine answers — the chaos gate's
faulted-shard invariant.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

from ..qdb.engine import (
    Answer,
    QuerySetSizeControl,
    OverlapControl,
    Refusal,
    StatisticalDatabase,
    SumAuditPolicy,
    _env_int,
)
from ..qdb.parser import parse_query
from ..qdb.query import Query
from ..telemetry import instrument as tele
from ..telemetry import requesttrace
from ..telemetry.registry import MetricsRegistry
from ..faults.retry import emit_decision
from .admission import (
    ADMISSION_PREFIX,
    AdmissionController,
    OVERLOAD_COMPONENT,
    OVERLOAD_DECISION,
    REASON_QUEUE_FULL,
)
from .audit import CrossShardAuditPolicy, CrossShardAuditView
from .router import ConsistentHashRouter

__all__ = ["ServingRuntime"]

_STOP = object()


class _Request:
    """One enqueued unit of shard work (a parsed query or a PIR scatter)."""

    __slots__ = ("session", "kind", "payload", "future", "trace")

    def __init__(self, session: str, kind: str, payload, future, trace=None):
        self.session = session
        self.kind = kind          # "qdb" | "pir"
        self.payload = payload
        self.future = future
        self.trace = trace        # RequestTrace | None (None when untraced)


class _PirScatter:
    """Gathers one batched PIR retrieval scattered across owning shards."""

    def __init__(self, n_positions: int, shard_indices):
        self._lock = threading.Lock()
        self._pending = set(shard_indices)
        self._values: list[int | None] = [None] * n_positions
        self.future: Future = Future()

    def deliver(self, shard: int, positions, values) -> bool:
        """Fold one shard's values in; True iff this call completed it."""
        with self._lock:
            for position, value in zip(positions, values):
                self._values[position] = value
            self._pending.discard(shard)
            done = not self._pending
        if done and not self.future.done():
            self.future.set_result(list(self._values))
        return done

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)


class Shard:
    """One shard: a full-population engine, a PIR slice, a bounded queue."""

    def __init__(self, index: int, db: StatisticalDatabase, pir,
                 queue_depth: int, decision_lock, batch_max: int,
                 workers: int, metrics: MetricsRegistry):
        self.index = index
        self.db = db
        self.pir = pir
        self.queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self.decision_lock = decision_lock
        self.batch_max = batch_max
        self.n_workers = workers
        self.threads: list[threading.Thread] = []
        self.c_processed = metrics.counter(f"serving.shard{index}.processed")
        self.c_refused = metrics.counter(f"serving.shard{index}.refused")
        self.c_pir = metrics.counter(f"serving.shard{index}.pir_positions")

    # -- worker loop -------------------------------------------------------

    def start(self) -> None:
        for worker in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serving-shard{self.index}-w{worker}",
                daemon=True,
            )
            thread.start()
            self.threads.append(thread)

    def _worker_loop(self) -> None:
        while True:
            first = self.queue.get()
            if first is _STOP:
                self.queue.task_done()
                return
            batch = [first]
            taken = 1
            stop_seen = False
            while taken < self.batch_max:
                try:
                    item = self.queue.get_nowait()
                except queue.Empty:
                    break
                taken += 1
                if item is _STOP:
                    stop_seen = True
                    break
                batch.append(item)
            # queue_wait ends at batch pickup.  One clock read covers
            # the whole batch — the drain above is non-blocking, so the
            # items left the queue microseconds apart, and a shared
            # timestamp keeps the traced path off the per-item
            # perf_counter + method-call cost the overhead gate bounds.
            now = None
            for item in batch:
                trace = item.trace
                if trace is not None:
                    if now is None:
                        now = time.perf_counter()
                    trace.dequeue = now
            try:
                self._process(batch)
            finally:
                for _ in range(taken):
                    self.queue.task_done()
            if stop_seen:
                return

    def _process(self, batch: list[_Request]) -> None:
        # Group consecutive runs of the same (kind, session) so tracker
        # sweeps and replayed logs flow through ask_batch in one call,
        # while preserving each session's submission order end to end.
        start = 0
        while start < len(batch):
            end = start + 1
            head = batch[start]
            while (end < len(batch)
                   and batch[end].kind == head.kind
                   and batch[end].session == head.session):
                end += 1
            group = batch[start:end]
            try:
                if head.kind == "qdb":
                    self._run_qdb(head.session, group)
                else:
                    self._run_pir(group)
            except BaseException as exc:  # engine bugs -> caller, not hang
                for request in group:
                    if head.kind == "pir":
                        request.payload[0].fail(exc)
                    elif not request.future.done():
                        request.future.set_exception(exc)
                    if request.trace is not None:
                        request.trace.mark("done")
                        requesttrace.emit_request_span(
                            request.trace, outcome="error", reason=repr(exc)
                        )
            start = end

    def _run_qdb(self, session: str, group: list[_Request]) -> None:
        queries = [request.payload for request in group]
        traced = any(request.trace is not None for request in group)
        if traced:
            # The group shares one engine call, so its members reach
            # dispatch/lock/kernel at the same instant: one clock read
            # per boundary, stored straight into the trace slots.
            now = time.perf_counter()
            for request in group:
                if request.trace is not None:
                    request.trace.dispatch = now
            # One trace id per query, in batch order: the engine pops
            # them as it processes so each qdb.query span carries its
            # own request's id even though the batch shares one call.
            if len(group) == 1:
                requesttrace.push_one(group[0].trace.trace_id)
            else:
                requesttrace.push_pending([
                    request.trace.trace_id if request.trace is not None
                    else None
                    for request in group
                ])
        # The decision lock (the shared audit view's RLock, or a
        # per-shard lock when audits are isolated) is held across the
        # whole batch: policy review order is the privacy semantics.
        try:
            with self.decision_lock, self.db.session(session):
                if traced:
                    now = time.perf_counter()
                    for request in group:
                        if request.trace is not None:
                            request.trace.lock = now
                answers = self.db.ask_batch(queries)
        finally:
            if traced:
                requesttrace.clear_pending()
        if traced:
            now = time.perf_counter()
            for request in group:
                if request.trace is not None:
                    request.trace.kernel = now
        for request, answer in zip(group, answers):
            self.c_processed.inc()
            if answer.refused:
                self.c_refused.inc()
            trace = request.trace
            if trace is not None:
                trace.gather = time.perf_counter()
            if not request.future.done():
                request.future.set_result(answer)
            if trace is not None:
                trace.done = time.perf_counter()
                requesttrace.emit_request_span(
                    trace,
                    outcome="refused" if answer.refused else "answered",
                    reason=answer.reason if answer.refused else None,
                )

    def _run_pir(self, group: list[_Request]) -> None:
        for request in group:
            scatter, positions, local_indices, seed = request.payload
            trace = request.trace
            if trace is None:
                values = self.pir.retrieve_batch_int(local_indices, rng=seed)
                self.c_pir.inc(len(values))
                scatter.deliver(self.index, positions, values)
                continue
            # One trace rides every shard-level entry of the scatter;
            # last-writer-wins marks make the reported stages the
            # critical path, and the shard that completes the gather
            # emits the request span.  PIR holds no decision lock, so
            # the audit stage is marked as an empty interval.
            now = time.perf_counter()
            trace.dispatch = now
            trace.lock = now  # no decision lock on PIR: empty audit stage
            # requesttrace.activate, inlined: the context-manager
            # generator is one more GC-tracked allocation per shard
            # entry, and PIR fan-out crosses this line once per owning
            # shard per request.
            ctx = requesttrace.TRACE_CONTEXT
            prev_tid = getattr(ctx, "tid", None)
            ctx.tid = trace.trace_id
            try:
                values = self.pir.retrieve_batch_int(local_indices, rng=seed)
            finally:
                ctx.tid = prev_tid
            trace.kernel = time.perf_counter()
            self.c_pir.inc(len(values))
            done = scatter.deliver(self.index, positions, values)
            trace.gather = time.perf_counter()
            if done:
                trace.shard = self.index
                trace.done = time.perf_counter()
                requesttrace.emit_request_span(trace, outcome="answered")

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        for _ in self.threads:
            self.queue.put(_STOP)
        for thread in self.threads:
            thread.join()
        self.threads.clear()


class ServingRuntime:
    """A sharded, admission-controlled serving front end over the engine.

    Parameters
    ----------
    data:
        The population every shard answers over.
    shards:
        Shard count; default ``REPRO_SERVING_SHARDS`` (else 4).
    k:
        Query-set-size threshold installed on every shard.
    max_overlap / sum_audit:
        The stateful audit stack.  With ``shared_audit=True`` (default)
        these live once in the global :class:`CrossShardAuditView`;
        with ``shared_audit=False`` each shard gets isolated copies
        (the negative control — split trackers then succeed).
    queue_depth:
        Per-shard ingress queue bound; default
        ``REPRO_SERVING_QUEUE_DEPTH`` (else 64).
    batch_max / workers_per_shard:
        Dispatch batching limit and worker threads per shard.
    session_rate / session_burst / clock:
        Per-session token-bucket admission (None disables rate limits;
        ``clock`` injects a fake clock for deterministic tests).
    pir_values:
        Optional integer block values served via per-shard two-server
        XOR PIR, partitioned over shards by the block ring.
    backend_factory:
        Optional ``shard_index -> Dataset`` hook so chaos tests can give
        one shard a faulted :class:`~repro.faults.ReplicatedBackend`.
    auto_start:
        When False, workers start on the first explicit :meth:`start`
        (lets tests fill queues to force backpressure).
    """

    def __init__(self, data, *, shards: int | None = None, k: int = 5,
                 max_overlap: int | None = None, sum_audit: bool = True,
                 shared_audit: bool = True, queue_depth: int | None = None,
                 batch_max: int = 16, workers_per_shard: int = 1,
                 session_rate: float | None = None,
                 session_burst: float | None = None, clock=None,
                 pir_values=None, seed: int = 0,
                 history_store: str | None = None, backend_factory=None,
                 auto_start: bool = True, use_plans: bool = True):
        if shards is None:
            shards = _env_int("REPRO_SERVING_SHARDS") or 4
        if queue_depth is None:
            queue_depth = _env_int("REPRO_SERVING_QUEUE_DEPTH") or 64
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.data = data
        self.n_shards = shards
        self.queue_depth = queue_depth
        self.shared_audit = shared_audit
        self.router = ConsistentHashRouter(shards)
        self.admission = AdmissionController(
            session_rate=session_rate, session_burst=session_burst,
            clock=clock,
        )
        self.metrics = MetricsRegistry(owner="serving")
        self._c_admitted = self.metrics.counter("serving.admitted")
        self._c_overload = self.metrics.counter("serving.overload_refusals")
        # Deterministic trace-id assignment: per-session sequence numbers
        # (never reset) + the 1-in-N REPRO_TRACE_SAMPLE knob.
        self._trace_seq: dict[str, int] = {}
        self._trace_lock = threading.Lock()
        self._trace_every = requesttrace.trace_sample_every()

        self.view: CrossShardAuditView | None = None
        if shared_audit:
            self.view = CrossShardAuditView(
                data.n_rows, max_overlap=max_overlap, sum_audit=sum_audit,
                history_store=history_store,
            )

        # PIR blocks partition over the same ring, keyed "block:<g>".
        self._block_owner: list[tuple[int, int]] = []
        per_shard_values: dict[int, list[int]] = {}
        if pir_values is not None:
            for global_index, value in enumerate(pir_values):
                owner = self.router.shard_for(f"block:{global_index}")
                local = len(per_shard_values.setdefault(owner, []))
                per_shard_values[owner].append(int(value))
                self._block_owner.append((owner, local))

        self.shards: list[Shard] = []
        for index in range(shards):
            policies = [QuerySetSizeControl(k)]
            if shared_audit:
                policies.append(CrossShardAuditPolicy(self.view))
                decision_lock = self.view.lock
            else:
                if max_overlap is not None:
                    policies.append(OverlapControl(max_overlap))
                if sum_audit:
                    policies.append(SumAuditPolicy())
                decision_lock = threading.RLock()
            shard_data = backend_factory(index) if backend_factory else data
            db = StatisticalDatabase(
                shard_data, policies, seed=seed, use_plans=use_plans,
                history_store=None if shared_audit else history_store,
            )
            pir = None
            if per_shard_values.get(index):
                from ..pir.itpir import TwoServerXorPIR

                pir = TwoServerXorPIR(per_shard_values[index])
            self.shards.append(Shard(
                index, db, pir, queue_depth, decision_lock, batch_max,
                workers_per_shard, self.metrics,
            ))

        self._started = False
        self._lifecycle = threading.Lock()
        if auto_start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the shard worker pools (idempotent)."""
        with self._lifecycle:
            if self._started:
                return
            for shard in self.shards:
                shard.start()
            self._started = True

    def drain(self) -> None:
        """Block until every enqueued request has been processed."""
        for shard in self.shards:
            shard.queue.join()

    def close(self) -> None:
        """Drain and stop all workers."""
        with self._lifecycle:
            if not self._started:
                return
            for shard in self.shards:
                shard.stop()
            self._started = False

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- query path --------------------------------------------------------

    def shard_of(self, session: str) -> int:
        """The shard a session label routes to."""
        return self.router.shard_for(session)

    def submit(self, session: str, query: Query | str) -> Future:
        """Enqueue one statistical query; resolves to an :class:`Answer`.

        Overload resolves the future *immediately* with a typed
        :class:`Refusal` (reason prefixed ``"admission: "``) and emits
        the ``refuse-overload`` audit span — it never raises.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        shard = self.shards[self.router.shard_for(session)]
        future: Future = Future()
        trace = self._start_trace(session, "qdb", shard.index)
        reason = self.admission.admit(session)
        if reason is None:
            try:
                if trace is not None:
                    # len() of the underlying deque, not qsize(): taking
                    # the queue mutex here convoys with the workers
                    # draining it, and an observability attribute only
                    # needs an instantaneous (atomic-read) depth.
                    trace.queue_depth = len(shard.queue.queue)
                    trace.enqueue = time.perf_counter()
                shard.queue.put_nowait(
                    _Request(session, "qdb", parsed, future, trace)
                )
            except queue.Full:
                reason = REASON_QUEUE_FULL
        if reason is not None:
            if trace is not None:
                # Never entered a queue: the waterfall reports only the
                # admission check and the refusal emission.
                trace.enqueue = None
                trace.mark("refused")
            self._refuse_overload(session, shard.index, parsed, reason,
                                  future, trace)
            return future
        self._c_admitted.inc()
        return future

    def _start_trace(self, session: str, kind: str, shard: int):
        """Mint the request's trace context (None when untraced).

        The per-session sequence number always advances — sampling
        decides only whether a :class:`RequestTrace` is materialised —
        so trace ids are identical run to run for the same workload
        regardless of the sampling knob.
        """
        if not tele.enabled():
            return None
        with self._trace_lock:
            seq = self._trace_seq.get(session, 0) + 1
            self._trace_seq[session] = seq
        if (seq - 1) % self._trace_every:
            return None
        trace = requesttrace.RequestTrace(
            requesttrace.mint_trace_id(session, seq), session, kind, shard
        )
        trace.submit = time.perf_counter()
        return trace

    def ask(self, session: str, query: Query | str) -> Answer:
        """Blocking :meth:`submit`."""
        return self.submit(session, query).result()

    def _refuse_overload(self, session: str, shard: int, parsed: Query,
                         reason: str, future: Future, trace=None) -> None:
        self._c_overload.inc()
        detail = f"{reason} (session {session!r}, shard {shard})"
        if trace is not None:
            emit_decision(OVERLOAD_COMPONENT, OVERLOAD_DECISION, reason,
                          session=session, shard=shard,
                          trace_id=trace.trace_id)
        else:
            emit_decision(OVERLOAD_COMPONENT, OVERLOAD_DECISION, reason,
                          session=session, shard=shard)
        future.set_result(
            Refusal(parsed, reason=f"{ADMISSION_PREFIX}{detail}")
        )
        if trace is not None:
            trace.mark("done")
            requesttrace.emit_request_span(
                trace, outcome="refused-overload", reason=reason
            )

    # -- PIR path ----------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Total PIR blocks across all shards."""
        return len(self._block_owner)

    def submit_pir(self, session: str, indices, seed=None) -> Future:
        """Scatter a batched PIR retrieval to the owning shards.

        Unlike :meth:`submit`, a full shard queue *blocks* instead of
        refusing: a typed refusal would reveal which shard was hot and
        thus leak ~log2(shards) bits about the requested indices.
        """
        if not self._block_owner:
            raise ValueError("runtime was built without pir_values")
        indices = list(indices)
        per_shard: dict[int, tuple[list[int], list[int]]] = {}
        for position, global_index in enumerate(indices):
            owner, local = self._block_owner[global_index]
            positions, locals_ = per_shard.setdefault(owner, ([], []))
            positions.append(position)
            locals_.append(local)
        scatter = _PirScatter(len(indices), per_shard.keys())
        if not per_shard:
            scatter.future.set_result([])
            return scatter.future
        owners = sorted(per_shard)
        trace = self._start_trace(session, "pir", owners[0])
        if trace is not None:
            # Lock-free depth reads, as in submit(): worst depth across
            # the owning shards at scatter time.
            trace.queue_depth = max(
                len(self.shards[owner].queue.queue) for owner in owners
            )
            trace.enqueue = time.perf_counter()
        for owner in owners:
            positions, locals_ = per_shard[owner]
            self.shards[owner].queue.put(_Request(
                session, "pir", (scatter, positions, locals_, seed), None,
                trace,
            ))
        return scatter.future

    def retrieve_batch_int(self, session: str, indices,
                           seed=None) -> list[int]:
        """Blocking :meth:`submit_pir`, decoded ints in request order."""
        return self.submit_pir(session, list(indices), seed=seed).result()

    # -- introspection -----------------------------------------------------

    def distinct_shard_sessions(self, prefix: str, count: int) -> list[str]:
        """Session labels guaranteed to land on pairwise-distinct shards.

        Used by the split-tracker attack and the load generator's cohort
        to *prove* the attack crosses shards.  When the runtime has
        fewer shards than ``count`` the tail labels reuse shards (a
        1-shard runtime cannot split anything — and doesn't need to).
        """
        labels: list[str] = []
        used: set[int] = set()
        probe = 0
        while len(labels) < count and len(used) < self.n_shards:
            label = f"{prefix}-{probe}"
            probe += 1
            shard = self.router.shard_for(label)
            if shard in used:
                continue
            used.add(shard)
            labels.append(label)
        extra = 0
        while len(labels) < count:
            labels.append(f"{prefix}-extra-{extra}")
            extra += 1
        return labels

    def stats(self) -> dict:
        """Per-shard counters and queue depths, plus runtime totals."""
        shard_stats = []
        for shard in self.shards:
            shard_stats.append({
                "shard": shard.index,
                "processed": shard.c_processed.value,
                "refused": shard.c_refused.value,
                "pir_positions": shard.c_pir.value,
                "queue_depth": shard.queue.qsize(),
                "pir_blocks": shard.pir.n if shard.pir is not None else 0,
            })
        return {
            "shards": shard_stats,
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            "shared_audit": self.shared_audit,
            "admitted": self._c_admitted.value,
            "overload_refusals": self._c_overload.value,
            "sessions_tracked": self.admission.sessions_tracked,
            "audit_answered": self.view.answered if self.view else None,
        }
