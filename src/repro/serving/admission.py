"""Admission control: token-bucket rate limits and typed overload refusals.

The serving runtime refuses work it cannot absorb *before* the work
touches a shard, and it refuses in the open: every overload refusal is a
typed :class:`~repro.qdb.engine.Refusal` whose reason starts with the
frozen ``"admission: "`` prefix, plus one ``faults.degrade`` span
(component ``"serving"``, decision ``"refuse-overload"``) through
:func:`repro.faults.retry.emit_decision` — so a load-shedding incident
is reconstructable from the telemetry capture exactly like a replica
failover or an SMC party exclusion.

Frozen reason strings (DESIGN.md §12 — operators grep for these):

* ``admission: session rate limit exceeded (...)`` — the session's
  token bucket is empty (:data:`REASON_RATE_LIMITED`);
* ``admission: shard ingress queue full (...)`` — the target shard's
  bounded queue rejected the enqueue (:data:`REASON_QUEUE_FULL`).

Threat model: overload is an *availability* attack surface — a greedy
or malicious session must not starve other sessions, and shedding load
must never bypass the privacy policies (a refused-at-admission query
never reaches the engine, so it cannot leak).  Failure behaviour: pure
refusal, never an exception on the query path; with telemetry disabled
the audit span is a strict no-op and only the typed refusal remains.

>>> clock = FakeClock()
>>> bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
>>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
(True, True, False)
>>> clock.advance(1.0)          # one simulated second refills one token
>>> bucket.try_acquire()
True
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "ADMISSION_PREFIX",
    "AdmissionController",
    "FakeClock",
    "OVERLOAD_COMPONENT",
    "OVERLOAD_DECISION",
    "REASON_QUEUE_FULL",
    "REASON_RATE_LIMITED",
    "TokenBucket",
]

#: Prefix of every overload-refusal reason (frozen; DESIGN.md §12).
ADMISSION_PREFIX = "admission: "

#: Frozen overload reasons (the parenthesized detail varies, these don't).
REASON_RATE_LIMITED = "session rate limit exceeded"
REASON_QUEUE_FULL = "shard ingress queue full"

#: ``faults.degrade`` span identity for overload decisions.
OVERLOAD_COMPONENT = "serving"
OVERLOAD_DECISION = "refuse-overload"


class FakeClock:
    """A manually advanced clock for deterministic rate-limit tests."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)

    def __call__(self) -> float:
        return self.now


class TokenBucket:
    """The classical token bucket: ``burst`` capacity, ``rate`` refill/s.

    ``rate=0`` never refills — with an integer ``burst`` that makes the
    bucket a deterministic "first B requests only" admission counter,
    which is what the chaos gate uses to script overload without
    touching wall time.  Not thread-safe on its own; the
    :class:`AdmissionController` serializes access.
    """

    def __init__(self, rate: float, burst: float, clock=None):
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = float(burst)
        self._last = self._clock()

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take *cost* tokens if available; never blocks."""
        now = self._clock()
        if self.rate > 0.0:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


class AdmissionController:
    """Per-session token buckets behind one lock.

    ``session_rate=None`` disables rate limiting entirely (every
    ``admit`` call returns None); the bounded per-shard queues then
    remain the only backpressure.  Buckets are created lazily per
    session label and live for the runtime's lifetime.
    """

    def __init__(self, session_rate: float | None = None,
                 session_burst: float | None = None, clock=None):
        self.session_rate = session_rate
        self.session_burst = (
            float(session_burst) if session_burst is not None
            else (max(1.0, 2.0 * session_rate) if session_rate else 1.0)
        )
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def admit(self, session: str) -> str | None:
        """None to admit, or the frozen refusal reason."""
        if self.session_rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(session)
            if bucket is None:
                bucket = TokenBucket(
                    self.session_rate, self.session_burst, clock=self._clock
                )
                self._buckets[session] = bucket
            if bucket.try_acquire():
                return None
        return REASON_RATE_LIMITED

    @property
    def sessions_tracked(self) -> int:
        """Distinct session labels with a live bucket."""
        with self._lock:
            return len(self._buckets)
