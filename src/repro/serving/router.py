"""Consistent-hash routing of sessions (and PIR blocks) onto shards.

The serving runtime partitions *sessions*, not records: every shard
answers statistical queries over the whole population (sharding rows
would change answers), but each session's requests always land on the
same shard so its ingress queue, rate-limit bucket, and per-shard audit
bookkeeping stay local.  PIR block stores *are* partitioned — each shard
holds a slice of the block array and runs its own two-server scheme over
it — and the same ring assigns blocks to owners.

Hashing is ``zlib.crc32`` over the key bytes, never ``hash()``: CRC is
stable across processes and interpreter configurations (``hash()``
varies with ``PYTHONHASHSEED``), so a session routes to the same shard
from any client, any process, any run — the property the router
determinism tests pin down.

The ring carries ``vnodes`` virtual points per shard.  Growing the ring
from N to N+1 shards only *adds* points, which yields the classical
consistent-hashing contract the resharding test asserts: a key either
keeps its shard or moves to the newly added one; no key migrates
between two pre-existing shards.

>>> router = ConsistentHashRouter(4)
>>> router.shard_for("user-7") == ConsistentHashRouter(4).shard_for("user-7")
True
>>> wider = ConsistentHashRouter(5)
>>> moved = [k for k in map("user-{}".format, range(100))
...          if router.shard_for(k) != wider.shard_for(k)]
>>> all(wider.shard_for(k) == 4 for k in moved)  # only onto the new shard
True
"""

from __future__ import annotations

import bisect
import zlib

__all__ = ["ConsistentHashRouter"]


def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class ConsistentHashRouter:
    """A fixed ring of ``n_shards * vnodes`` CRC32 points.

    Parameters
    ----------
    n_shards:
        Number of shards on the ring (>= 1).
    vnodes:
        Virtual points per shard; more points smooth the key balance at
        the cost of a larger (still tiny) sorted ring.
    salt:
        Namespace mixed into every vnode hash, so two rings serving
        different roles over the same shard count do not correlate.
    """

    def __init__(self, n_shards: int, vnodes: int = 64,
                 salt: str = "serving"):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.n_shards = n_shards
        self.vnodes = vnodes
        self.salt = salt
        points = sorted(
            (_crc(f"{salt}/{shard}/{vnode}"), shard)
            for shard in range(n_shards)
            for vnode in range(vnodes)
        )
        self._points = points
        self._hashes = [point for point, _ in points]

    def shard_for(self, key: str) -> int:
        """The shard owning *key*: its hash's successor point on the ring."""
        position = bisect.bisect_right(self._hashes, _crc(key))
        if position == len(self._hashes):
            position = 0
        return self._points[position][1]

    def spread(self, keys) -> dict[int, int]:
        """Keys per shard — a quick balance diagnostic for tests/CLI."""
        counts: dict[int, int] = {shard: 0 for shard in range(self.n_shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
