"""Attribute roles and dataset schemas.

The paper (Section 2, following Dalenius [9] and Samarati [20]) divides the
attributes of a microdata file into:

* **identifiers** — attributes that unambiguously identify the respondent
  (name, social security number).  These are removed before any release.
* **key attributes** (quasi-identifiers) — attributes that identify the
  respondent *with some ambiguity* (height, weight, zip code, age): an
  intruder can plausibly learn them for a target individual and use them
  for record linkage.
* **confidential attributes** — the sensitive payload (blood pressure,
  AIDS status) whose association with an identity must be protected.
* **non-confidential attributes** — everything else.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping


class AttributeRole(enum.Enum):
    """Role an attribute plays in disclosure-risk analysis."""

    IDENTIFIER = "identifier"
    QUASI_IDENTIFIER = "quasi-identifier"
    CONFIDENTIAL = "confidential"
    NON_CONFIDENTIAL = "non-confidential"


class Schema:
    """Immutable mapping from attribute name to :class:`AttributeRole`.

    >>> schema = Schema({"height": AttributeRole.QUASI_IDENTIFIER,
    ...                  "aids": AttributeRole.CONFIDENTIAL})
    >>> schema.quasi_identifiers
    ('height',)
    """

    def __init__(self, roles: Mapping[str, AttributeRole]):
        self._roles = dict(roles)

    def __contains__(self, name: str) -> bool:
        return name in self._roles

    def __getitem__(self, name: str) -> AttributeRole:
        return self._roles[name]

    def __iter__(self):
        return iter(self._roles)

    def __len__(self) -> int:
        return len(self._roles)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._roles == other._roles

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={role.value}" for name, role in self._roles.items())
        return f"Schema({parts})"

    def role(self, name: str, default: AttributeRole | None = None) -> AttributeRole | None:
        """Return the role of *name*, or *default* when unknown."""
        return self._roles.get(name, default)

    def _names_with(self, role: AttributeRole) -> tuple[str, ...]:
        return tuple(name for name, r in self._roles.items() if r is role)

    @property
    def identifiers(self) -> tuple[str, ...]:
        """Names of directly identifying attributes."""
        return self._names_with(AttributeRole.IDENTIFIER)

    @property
    def quasi_identifiers(self) -> tuple[str, ...]:
        """Names of key attributes, in schema order."""
        return self._names_with(AttributeRole.QUASI_IDENTIFIER)

    @property
    def confidential(self) -> tuple[str, ...]:
        """Names of confidential attributes."""
        return self._names_with(AttributeRole.CONFIDENTIAL)

    @property
    def non_confidential(self) -> tuple[str, ...]:
        """Names of non-confidential attributes."""
        return self._names_with(AttributeRole.NON_CONFIDENTIAL)

    def with_roles(self, updates: Mapping[str, AttributeRole]) -> "Schema":
        """Return a new schema with *updates* applied on top of this one."""
        merged = dict(self._roles)
        merged.update(updates)
        return Schema(merged)

    def restricted_to(self, names: Iterable[str]) -> "Schema":
        """Return a schema containing only *names* (those present here)."""
        keep = set(names)
        return Schema({n: r for n, r in self._roles.items() if n in keep})

    def as_dict(self) -> dict[str, AttributeRole]:
        """Return a plain-dict copy of the role mapping."""
        return dict(self._roles)
