"""Synthetic population generators.

The paper's scenarios concern clinical-trial microdata, census-style
microdata, high-dimensional sparse data (for the noise-reconstruction
disclosure attack of [11]) and market-basket data (for association-rule
hiding [25]).  All generators are deterministic given a seed and are sized
for a laptop.
"""

from __future__ import annotations

import numpy as np

from .roles import AttributeRole, Schema
from .table import Dataset

#: Schema for :func:`patients`.
PATIENTS_SCHEMA = Schema(
    {
        "patient_id": AttributeRole.IDENTIFIER,
        "height": AttributeRole.QUASI_IDENTIFIER,
        "weight": AttributeRole.QUASI_IDENTIFIER,
        "age": AttributeRole.QUASI_IDENTIFIER,
        "blood_pressure": AttributeRole.CONFIDENTIAL,
        "cholesterol": AttributeRole.CONFIDENTIAL,
        "aids": AttributeRole.CONFIDENTIAL,
    }
)

#: Schema for :func:`census`.
CENSUS_SCHEMA = Schema(
    {
        "person_id": AttributeRole.IDENTIFIER,
        "age": AttributeRole.QUASI_IDENTIFIER,
        "zipcode": AttributeRole.QUASI_IDENTIFIER,
        "sex": AttributeRole.QUASI_IDENTIFIER,
        "education": AttributeRole.NON_CONFIDENTIAL,
        "income": AttributeRole.CONFIDENTIAL,
        "disease": AttributeRole.CONFIDENTIAL,
    }
)

_EDUCATION_LEVELS = ("primary", "secondary", "bachelor", "master", "doctorate")
_DISEASES = ("none", "flu", "diabetes", "hypertension", "cancer", "hiv")


def _rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def patients(n: int, seed: int | np.random.Generator | None = 0) -> Dataset:
    """Generate a hypertension-trial population like the paper's Table 1.

    Heights and weights are correlated (taller people are heavier); systolic
    blood pressure is at least 140 mmHg for everyone (the trial enrolled
    only hypertensive patients); AIDS status is a rare binary confidential
    attribute.
    """
    rng = _rng(seed)
    height = rng.normal(170.0, 9.0, size=n)
    # Weight correlates with height (r ~ 0.6) plus its own variation.
    weight = 0.9 * (height - 170.0) + rng.normal(80.0, 11.0, size=n)
    age = rng.integers(30, 81, size=n).astype(np.float64)
    # Pressure rises with weight and age so classifiers have real signal.
    blood_pressure = (
        140.0
        + 0.35 * (weight - 80.0)
        + 0.25 * (age - 55.0)
        + rng.gamma(shape=2.0, scale=5.0, size=n)
    )
    cholesterol = rng.normal(210.0, 30.0, size=n) + 0.3 * (weight - 80.0)
    aids = np.where(rng.random(n) < 0.08, "Y", "N").astype(object)
    ids = np.array([f"P{i:05d}" for i in range(n)], dtype=object)
    return Dataset(
        {
            "patient_id": ids,
            "height": np.round(height),
            "weight": np.round(weight),
            "age": age,
            "blood_pressure": np.round(blood_pressure),
            "cholesterol": np.round(cholesterol),
            "aids": aids,
        },
        schema=PATIENTS_SCHEMA,
    )


def census(n: int, seed: int | np.random.Generator | None = 0,
           n_zipcodes: int = 20) -> Dataset:
    """Generate census-style microdata with categorical quasi-identifiers."""
    rng = _rng(seed)
    age = rng.integers(18, 91, size=n).astype(np.float64)
    zipcode = np.array(
        [f"43{z:03d}" for z in rng.integers(0, n_zipcodes, size=n)], dtype=object
    )
    sex = np.where(rng.random(n) < 0.5, "M", "F").astype(object)
    edu_idx = np.minimum(
        rng.geometric(0.45, size=n) - 1, len(_EDUCATION_LEVELS) - 1
    )
    education = np.array([_EDUCATION_LEVELS[i] for i in edu_idx], dtype=object)
    income = np.round(
        np.exp(rng.normal(10.2, 0.5, size=n)) * (1.0 + 0.15 * edu_idx)
    )
    disease = np.array(
        [_DISEASES[i] for i in rng.choice(
            len(_DISEASES), size=n, p=[0.42, 0.25, 0.12, 0.12, 0.05, 0.04])],
        dtype=object,
    )
    ids = np.array([f"C{i:06d}" for i in range(n)], dtype=object)
    return Dataset(
        {
            "person_id": ids,
            "age": age,
            "zipcode": zipcode,
            "sex": sex,
            "education": education,
            "income": income,
            "disease": disease,
        },
        schema=CENSUS_SCHEMA,
    )


def sparse_clusters(
    n: int,
    n_dims: int,
    n_clusters: int = 8,
    cluster_std: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Generate high-dimensional clustered numeric data.

    As dimensionality grows the data become sparse: most attribute-value
    combinations are rare, which is exactly the regime in which
    Domingo-Ferrer, Sebé and Castellà [11] show that distribution
    reconstruction from noise-added data discloses original records.
    """
    rng = _rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_clusters, n_dims))
    assignment = rng.integers(0, n_clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, cluster_std, size=(n, n_dims))
    names = [f"x{i}" for i in range(n_dims)]
    roles = {name: AttributeRole.QUASI_IDENTIFIER for name in names}
    return Dataset.from_matrix(points, names=names, schema=Schema(roles))


def sparse_uniform(
    n: int,
    n_dims: int,
    low: float = 0.0,
    high: float = 10.0,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Uniform high-dimensional numeric data — maximal sparsity.

    With n records spread over ``bins ** d`` grid cells, most cells are
    empty or singly occupied once d grows: the regime where the
    reconstruction attack of [11] discloses respondents.
    """
    rng = _rng(seed)
    points = rng.uniform(low, high, size=(n, n_dims))
    names = [f"x{i}" for i in range(n_dims)]
    roles = {name: AttributeRole.QUASI_IDENTIFIER for name in names}
    return Dataset.from_matrix(points, names=names, schema=Schema(roles))


def market_baskets(
    n_transactions: int,
    n_items: int = 20,
    avg_basket: float = 4.0,
    seed: int | np.random.Generator | None = 0,
) -> list[frozenset[str]]:
    """Generate market-basket transactions with planted frequent itemsets.

    Items ``i0 .. i{n-1}``; a handful of item pairs/triples co-occur far more
    often than chance so Apriori finds non-trivial rules to hide.
    """
    rng = _rng(seed)
    items = [f"i{j}" for j in range(n_items)]
    planted = [("i0", "i1"), ("i2", "i3", "i4"), ("i1", "i5")]
    transactions: list[frozenset[str]] = []
    for _ in range(n_transactions):
        basket: set[str] = set()
        size = max(1, rng.poisson(avg_basket))
        basket.update(rng.choice(items, size=min(size, n_items), replace=False))
        for group in planted:
            if rng.random() < 0.35:
                basket.update(group)
        transactions.append(frozenset(basket))
    return transactions


def horizontal_partition(
    data: Dataset, n_parties: int, seed: int | np.random.Generator | None = 0
) -> list[Dataset]:
    """Split *data* row-wise among *n_parties* (crypto-PPDM scenario [18])."""
    if n_parties < 1:
        raise ValueError("need at least one party")
    rng = _rng(seed)
    perm = rng.permutation(data.n_rows)
    chunks = np.array_split(perm, n_parties)
    return [data.take(chunk) for chunk in chunks]


def vertical_partition(data: Dataset, column_groups: list[list[str]]) -> list[Dataset]:
    """Split *data* column-wise among parties (vertical PPDM scenario)."""
    seen: set[str] = set()
    for group in column_groups:
        overlap = seen.intersection(group)
        if overlap:
            raise ValueError(f"columns assigned to two parties: {sorted(overlap)}")
        seen.update(group)
    return [data.project(group) for group in column_groups]
