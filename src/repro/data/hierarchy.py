"""Generalization hierarchies for global recoding.

k-Anonymization by recoding (Samarati–Sweeney [21], Aggarwal et al. [2])
replaces quasi-identifier values by progressively coarser ones.  Two kinds of
hierarchy are provided:

* :class:`IntervalHierarchy` — numeric values are binned into intervals whose
  width doubles at each level, up to full suppression (``"*"``).
* :class:`TaxonomyHierarchy` — categorical values climb an explicit tree
  (e.g. ``"Tarragona" -> "Catalonia" -> "Spain" -> "*"``).

Both expose the same interface: ``levels`` (0 = raw) and
``generalize(values, level)``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

SUPPRESSED = "*"


class IntervalHierarchy:
    """Numeric generalization by fixed-origin intervals of doubling width.

    Level 0 returns values unchanged; level ``i`` (1-based) bins values into
    intervals of width ``base_width * 2**(i-1)``; the top level suppresses to
    ``"*"``.

    >>> h = IntervalHierarchy(base_width=5, n_levels=3)
    >>> h.generalize([163.0], 1)[0]
    '[160,165)'
    """

    def __init__(self, base_width: float, n_levels: int = 4, origin: float = 0.0):
        if base_width <= 0:
            raise ValueError("base_width must be positive")
        if n_levels < 1:
            raise ValueError("need at least one generalization level")
        self.base_width = float(base_width)
        self.origin = float(origin)
        self._n_levels = int(n_levels)

    @property
    def levels(self) -> int:
        """Total levels: raw (0), the interval levels, suppression (top)."""
        return self._n_levels + 2

    def width_at(self, level: int) -> float:
        """Interval width at 1-based generalization *level*."""
        if not 1 <= level <= self._n_levels:
            raise ValueError(f"level must be in [1, {self._n_levels}]")
        return self.base_width * (2 ** (level - 1))

    def generalize(self, values: Sequence[float], level: int):
        """Generalize numeric *values* to *level*; returns an object array."""
        values = np.asarray(values, dtype=np.float64)
        if level == 0:
            return values.copy()
        if not 0 <= level <= self.levels - 1:
            raise ValueError(f"level must be in [0, {self.levels - 1}]")
        if level == self.levels - 1:
            return np.full(values.shape, SUPPRESSED, dtype=object)
        width = self.width_at(level)
        lo = self.origin + np.floor((values - self.origin) / width) * width
        hi = lo + width
        out = np.empty(values.shape, dtype=object)
        for i, (a, b) in enumerate(zip(lo, hi)):
            out[i] = f"[{a:g},{b:g})"
        return out

    def interval_bounds(self, label: str) -> tuple[float, float]:
        """Parse a ``"[lo,hi)"`` label back into numeric bounds."""
        if label == SUPPRESSED:
            return (float("-inf"), float("inf"))
        body = label.strip("[)")
        lo_s, hi_s = body.split(",")
        return float(lo_s), float(hi_s)


class TaxonomyHierarchy:
    """Categorical generalization along an explicit parent tree.

    Parameters
    ----------
    parents:
        Mapping from each value to its immediate generalization.  Chains must
        terminate at :data:`SUPPRESSED` (added implicitly for roots).
    """

    def __init__(self, parents: Mapping[str, str]):
        self._parents = {str(k): str(v) for k, v in parents.items()}
        self._chains: dict[str, list[str]] = {}
        for leaf in self._parents:
            chain = [leaf]
            node = leaf
            seen = {leaf}
            while node in self._parents:
                node = self._parents[node]
                if node in seen:
                    raise ValueError(f"cycle in hierarchy at {node!r}")
                seen.add(node)
                chain.append(node)
            if chain[-1] != SUPPRESSED:
                chain.append(SUPPRESSED)
            self._chains[leaf] = chain
        self._max_depth = max((len(c) for c in self._chains.values()), default=1)

    @property
    def levels(self) -> int:
        """Number of levels including raw (0)."""
        return self._max_depth

    def generalize_value(self, value: str, level: int) -> str:
        """Generalize a single value by *level* steps (clamped at the root)."""
        chain = self._chains.get(str(value))
        if chain is None:
            if level == 0:
                return str(value)
            return SUPPRESSED
        idx = min(level, len(chain) - 1)
        return chain[idx]

    def generalize(self, values: Sequence, level: int):
        """Generalize *values* by *level* steps; returns an object array."""
        out = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            out[i] = self.generalize_value(v, level)
        return out

    def leaves_under(self, label: str) -> set[str]:
        """Return the raw values that generalize to *label* at some level."""
        if label == SUPPRESSED:
            return set(self._chains)
        return {leaf for leaf, chain in self._chains.items() if label in chain}


Hierarchy = IntervalHierarchy | TaxonomyHierarchy
