"""A small column-oriented tabular container.

``Dataset`` is the tabular substrate every other subsystem builds on.  It is
deliberately minimal: named columns backed by numpy arrays, an optional
:class:`~repro.data.roles.Schema` assigning disclosure roles, and the handful
of relational operations (project, filter, group-by) the privacy algorithms
need.  Numeric columns are stored as ``float64``; everything else is stored
as object arrays and treated as categorical.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .roles import AttributeRole, Schema

_NUMERIC_KINDS = "iuf"


def _as_column(values: Sequence | np.ndarray) -> np.ndarray:
    """Coerce *values* to a 1-D numpy array (float64 if numeric)."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"columns must be one-dimensional, got shape {arr.shape}")
    if arr.dtype.kind in _NUMERIC_KINDS:
        return arr.astype(np.float64)
    if arr.dtype.kind == "b":
        return arr.astype(object)
    return arr.astype(object)


class Dataset:
    """An ordered collection of equal-length named columns.

    Parameters
    ----------
    columns:
        Mapping from column name to a 1-D sequence of values.  Order is
        preserved and significant.
    schema:
        Optional attribute-role schema.  Columns without a role default to
        :attr:`AttributeRole.NON_CONFIDENTIAL` in role queries.
    """

    def __init__(self, columns: Mapping[str, Sequence], schema: Schema | None = None):
        self._columns: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for name, values in columns.items():
            arr = _as_column(values)
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise ValueError(
                    f"column {name!r} has {arr.shape[0]} rows, expected {n_rows}"
                )
            self._columns[name] = arr
        self._n_rows = n_rows or 0
        self.schema = schema or Schema({})

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        names: Sequence[str],
        rows: Iterable[Sequence],
        schema: Schema | None = None,
    ) -> "Dataset":
        """Build a dataset from an iterable of row tuples."""
        rows = list(rows)
        if rows and any(len(row) != len(names) for row in rows):
            raise ValueError("all rows must have one value per column name")
        columns = {
            name: [row[i] for row in rows] if rows else []
            for i, name in enumerate(names)
        }
        if not rows:
            columns = {name: np.empty(0, dtype=object) for name in names}
        return cls(columns, schema=schema)

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        names: Sequence[str] | None = None,
        schema: Schema | None = None,
    ) -> "Dataset":
        """Build an all-numeric dataset from a 2-D array (rows x columns)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        if names is None:
            names = [f"x{i}" for i in range(matrix.shape[1])]
        if len(names) != matrix.shape[1]:
            raise ValueError("one name per matrix column is required")
        return cls({n: matrix[:, i] for i, n in enumerate(names)}, schema=schema)

    def copy(self) -> "Dataset":
        """Return a deep copy (column arrays are copied)."""
        return Dataset(
            {name: arr.copy() for name, arr in self._columns.items()},
            schema=self.schema,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of records."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of attributes."""
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Attribute names in order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._columns[n], other._columns[n], equal_nan=True)
            if self._columns[n].dtype.kind in _NUMERIC_KINDS
            else np.array_equal(self._columns[n], other._columns[n])
            for n in self.column_names
        )

    def __repr__(self) -> str:
        return f"Dataset({self._n_rows} rows x {self.n_columns} columns: {list(self._columns)})"

    def column(self, name: str) -> np.ndarray:
        """Return the array backing column *name* (not a copy)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}; have {list(self._columns)}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def is_numeric(self, name: str) -> bool:
        """True when column *name* holds floating-point data."""
        return self.column(name).dtype.kind in _NUMERIC_KINDS

    def role(self, name: str) -> AttributeRole:
        """Disclosure role of column *name* (non-confidential by default)."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}")
        return self.schema.role(name, AttributeRole.NON_CONFIDENTIAL)

    @property
    def quasi_identifiers(self) -> tuple[str, ...]:
        """Quasi-identifier columns present in this dataset."""
        return tuple(n for n in self.schema.quasi_identifiers if n in self._columns)

    @property
    def confidential_attributes(self) -> tuple[str, ...]:
        """Confidential columns present in this dataset."""
        return tuple(n for n in self.schema.confidential if n in self._columns)

    def row(self, index: int) -> tuple:
        """Return record *index* as a tuple in column order."""
        return tuple(self._columns[name][index] for name in self._columns)

    def iter_rows(self) -> Iterable[tuple]:
        """Yield records as tuples in column order."""
        for i in range(self._n_rows):
            yield self.row(i)

    def to_rows(self) -> list[tuple]:
        """Materialise all records as a list of tuples."""
        return list(self.iter_rows())

    # ------------------------------------------------------------------
    # Relational operations (all return new Datasets)
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Dataset":
        """Keep only the columns in *names* (in the given order)."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"unknown columns: {missing}")
        return Dataset(
            {n: self._columns[n] for n in names},
            schema=self.schema.restricted_to(names),
        )

    def drop(self, names: Sequence[str]) -> "Dataset":
        """Remove the columns in *names*."""
        drop = set(names)
        keep = [n for n in self._columns if n not in drop]
        return self.project(keep)

    def select(self, mask: np.ndarray) -> "Dataset":
        """Keep the rows where boolean *mask* is true (or fancy-index rows)."""
        mask = np.asarray(mask)
        return Dataset(
            {n: arr[mask] for n, arr in self._columns.items()}, schema=self.schema
        )

    def take(self, indices: Sequence[int]) -> "Dataset":
        """Return the rows at *indices*, in that order."""
        idx = np.asarray(indices, dtype=np.intp)
        return self.select(idx)

    def with_column(self, name: str, values: Sequence) -> "Dataset":
        """Return a copy with column *name* added or replaced."""
        columns = dict(self._columns)
        columns[name] = _as_column(values)
        if columns[name].shape[0] != self._n_rows and self._columns:
            raise ValueError("new column length must match the dataset")
        return Dataset(columns, schema=self.schema)

    def with_schema(self, schema: Schema) -> "Dataset":
        """Return a shallow copy carrying *schema*."""
        return Dataset(self._columns, schema=schema)

    def rename(self, mapping: Mapping[str, str]) -> "Dataset":
        """Return a copy with columns renamed per *mapping*."""
        columns = {mapping.get(n, n): arr for n, arr in self._columns.items()}
        roles = {
            mapping.get(n, n): r for n, r in self.schema.as_dict().items()
        }
        return Dataset(columns, schema=Schema(roles))

    def vstack(self, other: "Dataset") -> "Dataset":
        """Concatenate rows of two datasets with identical column names."""
        if self.column_names != other.column_names:
            raise ValueError("datasets must share column names to vstack")
        columns = {}
        for name in self.column_names:
            left, right = self._columns[name], other._columns[name]
            if left.dtype.kind in _NUMERIC_KINDS and right.dtype.kind in _NUMERIC_KINDS:
                columns[name] = np.concatenate([left, right])
            else:
                columns[name] = np.concatenate(
                    [left.astype(object), right.astype(object)]
                )
        return Dataset(columns, schema=self.schema)

    def group_by(self, names: Sequence[str]) -> dict[tuple, np.ndarray]:
        """Group rows by their values on *names*.

        Returns a mapping from value tuple to the array of row indices that
        share it — the *equivalence classes* of SDC.
        """
        arrays = [self._columns[n] for n in names]
        groups: dict[tuple, list[int]] = {}
        for i in range(self._n_rows):
            key = tuple(arr[i] for arr in arrays)
            groups.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.intp) for k, v in groups.items()}

    # ------------------------------------------------------------------
    # Numeric views
    # ------------------------------------------------------------------
    def numeric_columns(self) -> tuple[str, ...]:
        """Names of all numeric columns."""
        return tuple(n for n in self._columns if self.is_numeric(n))

    def matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Return the named numeric columns as a 2-D float array (copy)."""
        if names is None:
            names = self.numeric_columns()
        bad = [n for n in names if not self.is_numeric(n)]
        if bad:
            raise TypeError(f"non-numeric columns requested: {bad}")
        if not names:
            return np.empty((self._n_rows, 0))
        return np.column_stack([self._columns[n] for n in names])

    def describe(self) -> dict[str, dict[str, float]]:
        """Per-numeric-column summary statistics (mean/std/min/max)."""
        summary = {}
        for name in self.numeric_columns():
            col = self._columns[name]
            if col.size == 0:
                summary[name] = {"mean": float("nan"), "std": float("nan"),
                                 "min": float("nan"), "max": float("nan")}
                continue
            summary[name] = {
                "mean": float(np.mean(col)),
                "std": float(np.std(col)),
                "min": float(np.min(col)),
                "max": float(np.max(col)),
            }
        return summary
