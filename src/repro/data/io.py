"""CSV round-tripping for :class:`~repro.data.table.Dataset`.

A thin layer over :mod:`csv` that preserves column order and restores
numeric columns on read (a column is numeric when every non-empty cell
parses as a float).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .roles import Schema
from .table import Dataset


def write_csv(data: Dataset, path: str | Path) -> None:
    """Write *data* to *path* as a header-first CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(data.column_names)
        for row in data.iter_rows():
            writer.writerow(
                [f"{v:g}" if isinstance(v, float) else v for v in row]
            )


def _parse_column(cells: list[str]) -> np.ndarray:
    values: list[float] = []
    for cell in cells:
        if cell == "":
            return np.asarray(cells, dtype=object)
        try:
            values.append(float(cell))
        except ValueError:
            return np.asarray(cells, dtype=object)
    return np.asarray(values, dtype=np.float64)


def read_csv(path: str | Path, schema: Schema | None = None) -> Dataset:
    """Read a header-first CSV file written by :func:`write_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            names = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty — no header row") from None
        rows = [row + [""] * (len(names) - len(row)) for row in reader]
    columns = {
        name: _parse_column([row[i] for row in rows])
        for i, name in enumerate(names)
    }
    return Dataset(columns, schema=schema)
