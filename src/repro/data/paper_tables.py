"""The paper's Table 1 toy patient datasets.

Table 1 of the paper shows two 10-record datasets obtained by a
pharmaceutical company testing a hypertension drug.  Attributes:

* ``height`` (cm) and ``weight`` (kg) — key attributes (quasi-identifiers);
* ``blood_pressure`` (systolic, mmHg) and ``aids`` (Y/N) — confidential.

The properties the paper asserts and that these constants must satisfy:

* **Dataset 1** spontaneously satisfies k-anonymity for ``k = 3`` on
  ``(height, weight)``: every combination appears at least three times.
* **Dataset 2** is *not* 3-anonymous; in particular it contains exactly one
  individual with ``height < 165`` and ``weight > 105`` whose systolic blood
  pressure is **146** — the record isolated by the Section 3 PIR COUNT/AVG
  attack.
* All patients are hypertensive (the trial enrolled only hypertension
  sufferers), so every systolic value is at or above 140 mmHg.

The published PDF's numeric cells did not survive the text extraction used
for this reproduction (only the AIDS Y/N columns did), so heights, weights
and pressures are reconstructed to meet every stated property; the AIDS
columns are verbatim from the paper.
"""

from __future__ import annotations

from .roles import AttributeRole, Schema
from .table import Dataset

#: Schema shared by both toy datasets.
PATIENT_SCHEMA = Schema(
    {
        "height": AttributeRole.QUASI_IDENTIFIER,
        "weight": AttributeRole.QUASI_IDENTIFIER,
        "blood_pressure": AttributeRole.CONFIDENTIAL,
        "aids": AttributeRole.CONFIDENTIAL,
    }
)

_COLUMNS = ("height", "weight", "blood_pressure", "aids")

# Dataset 1: three (height, weight) groups of sizes 3, 3 and 4 -> 3-anonymous.
# AIDS column verbatim from the paper: Y N N N Y N N Y N N.
_DATASET_1_ROWS = [
    (170, 72, 158, "Y"),
    (170, 72, 151, "N"),
    (170, 72, 162, "N"),
    (175, 84, 149, "N"),
    (175, 84, 170, "Y"),
    (175, 84, 155, "N"),
    (180, 95, 160, "N"),
    (180, 95, 166, "Y"),
    (180, 95, 145, "N"),
    (180, 95, 152, "N"),
]

# Dataset 2: not 3-anonymous.  Row 4 (160, 110) is the unique small-and-heavy
# individual with systolic pressure 146 used by the Section 3 PIR attack.
# AIDS column verbatim from the paper: N Y N N N Y N Y N N.
_DATASET_2_ROWS = [
    (170, 72, 158, "N"),
    (170, 72, 151, "Y"),
    (170, 72, 162, "N"),
    (160, 110, 146, "N"),
    (175, 84, 149, "N"),
    (175, 84, 170, "Y"),
    (182, 68, 160, "N"),
    (182, 95, 166, "Y"),
    (190, 102, 145, "N"),
    (158, 64, 152, "N"),
]


def dataset_1() -> Dataset:
    """Return patient Dataset 1 (Table 1, left): spontaneously 3-anonymous."""
    return Dataset.from_rows(_COLUMNS, _DATASET_1_ROWS, schema=PATIENT_SCHEMA)


def dataset_2() -> Dataset:
    """Return patient Dataset 2 (Table 1, right): not 3-anonymous."""
    return Dataset.from_rows(_COLUMNS, _DATASET_2_ROWS, schema=PATIENT_SCHEMA)


def format_table_1() -> str:
    """Render both datasets side by side, shaped like the paper's Table 1."""
    ds1, ds2 = dataset_1(), dataset_2()
    header = (
        f"{'Height':>7} {'Weight':>7} {'BP':>5} {'AIDS':>5}"
    )
    lines = ["Table 1. Left, patient data set no. 1. Right, patient data set no. 2.",
             f"{header}   |   {header}"]
    for r1, r2 in zip(ds1.iter_rows(), ds2.iter_rows()):
        left = f"{r1[0]:>7.0f} {r1[1]:>7.0f} {r1[2]:>5.0f} {r1[3]:>5}"
        right = f"{r2[0]:>7.0f} {r2[1]:>7.0f} {r2[2]:>5.0f} {r2[3]:>5}"
        lines.append(f"{left}   |   {right}")
    return "\n".join(lines)
