"""Tabular substrate: datasets, schemas, hierarchies and generators."""

from .hierarchy import (
    SUPPRESSED,
    Hierarchy,
    IntervalHierarchy,
    TaxonomyHierarchy,
)
from .io import read_csv, write_csv
from .paper_tables import (
    PATIENT_SCHEMA,
    dataset_1,
    dataset_2,
    format_table_1,
)
from .roles import AttributeRole, Schema
from .synthetic import (
    CENSUS_SCHEMA,
    PATIENTS_SCHEMA,
    census,
    horizontal_partition,
    market_baskets,
    patients,
    sparse_clusters,
    sparse_uniform,
    vertical_partition,
)
from .table import Dataset

__all__ = [
    "AttributeRole",
    "CENSUS_SCHEMA",
    "Dataset",
    "Hierarchy",
    "IntervalHierarchy",
    "PATIENTS_SCHEMA",
    "PATIENT_SCHEMA",
    "SUPPRESSED",
    "Schema",
    "TaxonomyHierarchy",
    "census",
    "dataset_1",
    "dataset_2",
    "format_table_1",
    "horizontal_partition",
    "market_baskets",
    "patients",
    "read_csv",
    "sparse_clusters",
    "sparse_uniform",
    "vertical_partition",
    "write_csv",
]
