"""The plan cache: normalized query structure -> compiled plan + runtime.

A deliberately small dict wrapper: the interesting part is the *key*
(:func:`repro.plan.compiler.plan_key` — aggregate, column, predicate
structure, policy-stack signature), not the container.  Hit/miss
accounting lives with the owning planner, whose engine exposes the
``qdb.plan_cache_hits`` / ``qdb.plan_cache_misses`` counters on the
metrics registry.

The cache is unbounded by default because keys are workload shapes, not
queries: a tracker session with thousands of queries touches a few
dozen shapes.  A ``max_size`` evicts oldest-inserted entries for
callers replaying adversarially diverse workloads.
"""

from __future__ import annotations

__all__ = ["PlanCache"]


class PlanCache:
    """Insertion-ordered mapping of plan keys to cached entries."""

    def __init__(self, max_size: int | None = None):
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.max_size = max_size
        self._entries: dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        """The cached entry for *key*, or None."""
        return self._entries.get(key)

    def put(self, key: tuple, entry) -> None:
        """Insert an entry, evicting the oldest past ``max_size``."""
        if self.max_size is not None and key not in self._entries:
            while len(self._entries) >= self.max_size:
                self._entries.pop(next(iter(self._entries)))
        self._entries[key] = entry

    def clear(self) -> None:
        self._entries.clear()
