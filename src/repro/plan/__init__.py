"""Query plan IR, optimizer, cache and executor (ROADMAP item 3).

This package is where speed work on the query path lands: queries
compile into a small typed plan IR (:mod:`~repro.plan.ir`), explicit
optimizer passes rewrite it (:mod:`~repro.plan.optimizer`: fuse audit
checks into one shared pass, prune no-op nodes, coalesce PIR fetches
into one deduplicated batch), compiled plans are cached by normalized
query structure (:mod:`~repro.plan.cache`), and the planner executes
them decision-identically to the legacy per-policy pipeline
(:mod:`~repro.plan.executor`).

Consumers: :class:`repro.qdb.engine.StatisticalDatabase` plans every
``ask``/``ask_batch`` by default (``use_plans=False`` restores the
legacy pipeline), and :class:`repro.pir.sql_bridge.PrivateAggregateIndex`
compiles range-predicate batches into coalesced PIR fetch plans.
``repro qdb explain "<query>"`` renders a plan pre/post optimization.
"""

from .cache import PlanCache
from .compiler import compile_query, plan_key, policy_signature
from .executor import PlanRuntime, QueryPlanner
from .ir import (
    AnswerSink,
    AuditCheck,
    Evaluate,
    FusedAuditCheck,
    FusedPirFetch,
    PirFetch,
    Plan,
    PlanNode,
    PolicyCheck,
    RefuseSink,
    ScanMask,
    Transform,
    explain,
)
from .optimizer import (
    PASS_COALESCE_PIR,
    PASS_FUSE_AUDIT,
    PASS_PRUNE_NOOP,
    coalesce_pir_fetches,
    fuse_audit_checks,
    optimize,
    prune_noop_nodes,
)

__all__ = [
    "AnswerSink",
    "AuditCheck",
    "Evaluate",
    "FusedAuditCheck",
    "FusedPirFetch",
    "PASS_COALESCE_PIR",
    "PASS_FUSE_AUDIT",
    "PASS_PRUNE_NOOP",
    "PirFetch",
    "Plan",
    "PlanCache",
    "PlanNode",
    "PlanRuntime",
    "PolicyCheck",
    "QueryPlanner",
    "RefuseSink",
    "ScanMask",
    "Transform",
    "coalesce_pir_fetches",
    "compile_query",
    "explain",
    "fuse_audit_checks",
    "optimize",
    "plan_key",
    "policy_signature",
    "prune_noop_nodes",
]
