"""Plan execution against a live engine: the planner and its runtime.

:class:`QueryPlanner` owns the compile → optimize → cache → execute
loop for one :class:`~repro.qdb.engine.StatisticalDatabase`.  Its
:meth:`~QueryPlanner.decide` is a drop-in replacement for the engine's
legacy per-policy pipeline and is *decision-identical* to it — same
answers, same refusal strings, same history, same counters, same rng
stream — which the golden-fingerprint and property suites pin down.
The speed comes from three places the legacy loop cannot reach:

* the fused audit node computes the query-set popcount once and shares
  it between the size and overlap checks;
* the packed overlap candidate is cached on the plan runtime (one
  ``pack_bool_rows`` per unique query shape, not per review);
* overlap scans are *incremental*: the history is append-only, and the
  chunked scan preserves order, so a candidate that has already been
  cleared against the first ``d`` history rows only scans the suffix
  ``[d, len(log))`` on its next review.  The cleared depth advances
  only after a clean scan, and resets whenever the engine's log object
  changes identity, so decisions — including *which* violating history
  row is reported first — never differ from a full scan.

The stateful sum audit is always delegated to the live policy object:
its incremental Gram–Schmidt float pipeline is bit-sensitive to
operation order, so the planner must not re-derive it.
"""

from __future__ import annotations

import numpy as np

from ..faults.errors import BackendUnavailable
from .cache import PlanCache
from .compiler import compile_query, policy_signature
from .ir import FusedAuditCheck, Plan, PolicyCheck, Transform, explain
from .optimizer import optimize

__all__ = ["PlanRuntime", "QueryPlanner"]

_ENGINE = None


def _engine():
    """The qdb engine module, imported lazily to break the import cycle."""
    global _ENGINE
    if _ENGINE is None:
        from ..qdb import engine

        _ENGINE = engine
    return _ENGINE


class PlanRuntime:
    """Mutable per-plan execution state (never part of the frozen plan).

    Holds the derived execution lists (check nodes, transform indices)
    and the overlap-scan acceleration state: the packed candidate for
    the plan's (frozen, engine-shared) mask object and the per-check
    history depth already scanned clean.
    """

    __slots__ = ("checks", "transforms", "mask_ref", "packed", "log_ref",
                 "cleared")

    def __init__(self, plan: Plan):
        self.checks = tuple(
            node for node in plan.nodes
            if isinstance(node, (PolicyCheck, FusedAuditCheck))
        )
        self.transforms = tuple(
            node.index for node in plan.nodes if isinstance(node, Transform)
        )
        self.mask_ref: np.ndarray | None = None
        self.packed: np.ndarray | None = None
        self.log_ref = None
        self.cleared: dict[int, int] = {}


class QueryPlanner:
    """Compiles, caches and executes plans for one engine instance."""

    def __init__(self, db, cache: bool = True,
                 max_cache_size: int | None = None):
        self._db = db
        self._cache = PlanCache(max_cache_size) if cache else None
        self._sig_ids: tuple | None = None
        self._sig: tuple = ()
        #: Whether the most recent decide() hit the plan cache.
        self.last_cached = False
        #: History rows the most recent decide() skipped via incremental
        #: overlap scanning.
        self.last_rows_skipped = 0

    @property
    def cache(self) -> PlanCache | None:
        return self._cache

    def _signature(self, policies) -> tuple:
        """The stack's structural signature, memoized by object identity.

        Execution always reads parameters off the live policy objects at
        their stack indices, so in-place parameter mutation never stales
        a decision; the signature only has to change when the stack's
        *objects* change (swap, append, reorder), which the id tuple
        detects at a fraction of the cost of rebuilding the signature on
        every ask.
        """
        ids = tuple(map(id, policies))
        if ids != self._sig_ids:
            self._sig = policy_signature(policies)
            self._sig_ids = ids
        return self._sig

    def plan_for(self, query) -> tuple[Plan, PlanRuntime]:
        """The optimized plan + runtime for *query*, cached by shape."""
        db = self._db
        key = (
            query.aggregate.value,
            query.column,
            query.predicate.cache_key(),
            self._signature(db.policies),
        )
        if self._cache is not None:
            entry = self._cache.get(key)
            if entry is not None:
                db._c_plan_hits.inc()
                self.last_cached = True
                return entry
            db._c_plan_misses.inc()
        self.last_cached = False
        plan = optimize(
            compile_query(query, db.policies, key=key), db.policies
        )
        entry = (plan, PlanRuntime(plan))
        if self._cache is not None:
            self._cache.put(key, entry)
        return entry

    def explain(self, query) -> str:
        """Pre/post-optimization rendering plus the cache key."""
        db = self._db
        before = compile_query(query, db.policies)
        after = optimize(before, db.policies)
        return "\n".join([
            explain(before, after),
            "",
            f"cache key: {before.key!r}",
        ])

    def decide(self, query, mask):
        """Execute the plan; decision-identical to the legacy pipeline."""
        db = self._db
        eng = _engine()
        db._c_asked.inc()
        self.last_rows_skipped = 0
        plan, runtime = self.plan_for(query)
        policies = db.policies
        for node in runtime.checks:
            if type(node) is FusedAuditCheck:
                refusal = self._run_fused(node, query, mask, runtime)
            else:
                policy = policies[node.index]
                reason = policy.review(query, mask, db._data, db.history)
                refusal = (
                    None if reason is None else (policy.name, reason)
                )
            if refusal is not None:
                name, reason = refusal
                db._c_refused.inc()
                db._consume_degraded()  # don't leak onto the next answer
                db.history.record(eng.LogEntry(query, mask, False, None))
                return eng.Answer(
                    query, refused=True, reason=f"{name}: {reason}"
                )
        try:
            answer = eng.Answer(
                query, value=query.evaluate_masked(db._data, mask)
            )
            for index in runtime.transforms:
                answer = policies[index].transform(
                    query, answer, mask, db._data, db._rng
                )
        except BackendUnavailable as exc:
            return db._backend_refusal(query, mask, exc)
        db.history.record(eng.LogEntry(query, mask, True, answer.value))
        if db._consume_degraded():
            db._c_degraded.inc()
            answer = eng.Degraded(
                answer.query, value=answer.value, interval=answer.interval,
                refused=answer.refused, reason=answer.reason,
                detail="storage replica failover during read",
            )
        return answer

    def _run_fused(self, node, query, mask, runtime):
        """One shared pass over the audit state; first violation wins.

        Checks execute in stack order and short-circuit exactly like the
        legacy per-policy loop, including the reason strings; parameters
        are read from the *live* policy objects at the recorded indices
        (the cache key pins the values the plan structure depends on).
        """
        db = self._db
        policies = db.policies
        size = -1
        for check in node.checks:
            policy = policies[check.index]
            if check.kind == "size":
                if size < 0:
                    size = int(np.count_nonzero(mask))
                if size < policy.k:
                    return (policy.name,
                            f"query set too small ({size} < {policy.k})")
                if size > db._data.n_rows - policy.k:
                    return (policy.name,
                            f"query set too large ({size} > n - {policy.k})")
            elif check.kind == "overlap":
                if size < 0:
                    size = int(np.count_nonzero(mask))
                if size <= policy.max_overlap:
                    continue  # |Q ∩ C| <= |C| can never exceed the threshold
                if getattr(db.history, "answered_masks", None) is None:
                    reason = policy.review(query, mask, db._data, db.history)
                else:
                    reason = self._overlap_scan(check, policy, mask, runtime)
                if reason is not None:
                    return policy.name, reason
            else:  # sum-audit: stateful float pipeline, delegated verbatim
                reason = policy.review(query, mask, db._data, db.history)
                if reason is not None:
                    return policy.name, reason
        return None

    def _overlap_scan(self, check, policy, mask, runtime):
        """Chunked overlap scan resuming from the cleared history prefix."""
        log = self._db.history.answered_masks
        if runtime.log_ref is not log or runtime.mask_ref is not mask:
            runtime.log_ref = log
            runtime.mask_ref = mask
            runtime.packed = log.pack(mask)
            runtime.cleared.clear()
        packed = runtime.packed
        depth = len(log)
        start = runtime.cleared.get(check.index, 0)
        if start > depth:  # log shrank out from under us: rescan everything
            start = 0
        for s in range(start, depth, policy.chunk):
            stop = min(s + policy.chunk, depth)
            overlaps = log.overlaps(packed, s, stop)
            hits = overlaps > policy.max_overlap
            if hits.any():
                overlap = int(overlaps[int(np.argmax(hits))])
                return (
                    f"query set overlaps a previous one in {overlap} "
                    f"records (> {policy.max_overlap})"
                )
        runtime.cleared[check.index] = depth
        if start:
            self.last_rows_skipped += start
            self._db._c_fused_rows_skipped.inc(start)
        return None
