"""Compile a query + policy stack into an (unoptimized) :class:`Plan`.

The compiled form is the legacy pipeline spelled out node by node: scan
the predicate mask, run every policy's review in stack order, evaluate
the aggregate, run every policy's transform in stack order, answer.
The optimizer (:mod:`repro.plan.optimizer`) rewrites it; the executor
(:mod:`repro.plan.executor`) runs either form with identical decisions.

Plans are cached under a *normalized structural key*: the aggregate,
the target column, the predicate's structural
:meth:`~repro.qdb.query.Predicate.cache_key`, and the policy stack's
signature (type, name, and the parameters the fused executor reads).
Two queries with equal keys compile to the same plan, so repeated
tracker shapes skip compilation entirely.
"""

from __future__ import annotations

from ..qdb.engine import (
    OverlapControl,
    ProtectionPolicy,
    QuerySetSizeControl,
    SumAuditPolicy,
)
from ..qdb.query import Query, TruePredicate
from .ir import (
    AnswerSink,
    AuditCheck,
    Evaluate,
    Plan,
    PolicyCheck,
    RefuseSink,
    ScanMask,
    Transform,
)

__all__ = ["audit_check_for", "compile_query", "plan_key", "policy_signature"]


def policy_signature(policies) -> tuple:
    """Structural signature of a policy stack, for plan-cache keying.

    Captures everything a cached plan's *structure* depends on: the
    concrete type, the display name (which encodes most constructor
    parameters), and — for the policies the fused audit node
    reimplements — the parameters its checks read (``k``,
    ``max_overlap``, ``chunk``).  Stateful policies (the sum audit) are
    always executed through the live object at their stack index, so
    their mutable state never needs to appear in the key.
    """
    parts = []
    for policy in policies:
        extra: tuple = ()
        if type(policy) is QuerySetSizeControl:
            extra = (policy.k,)
        elif type(policy) is OverlapControl:
            extra = (policy.max_overlap, policy.chunk)
        parts.append((type(policy).__name__, policy.name) + extra)
    return tuple(parts)


def plan_key(query: Query, policies) -> tuple:
    """The normalized cache key for *query* under *policies*."""
    return (
        query.aggregate.value,
        query.column,
        query.predicate.cache_key(),
        policy_signature(policies),
    )


def audit_check_for(index: int, policy) -> AuditCheck | None:
    """The fused-check descriptor for *policy*, or None if not fusable.

    Only the three audit policies whose review semantics the fused
    executor replicates exactly are fusable, and only at their *exact*
    type — a subclass may override ``review``, so it runs as a plain
    :class:`~repro.plan.ir.PolicyCheck` delegating to the override.
    """
    cls = type(policy)
    if cls is QuerySetSizeControl:
        return AuditCheck("size", index, policy.name, k=policy.k)
    if cls is OverlapControl:
        return AuditCheck(
            "overlap", index, policy.name,
            max_overlap=policy.max_overlap, chunk=policy.chunk,
        )
    if cls is SumAuditPolicy:
        return AuditCheck("sum-audit", index, policy.name)
    return None


def has_review(policy) -> bool:
    """True when the policy overrides :meth:`ProtectionPolicy.review`."""
    return type(policy).review is not ProtectionPolicy.review


def has_transform(policy) -> bool:
    """True when the policy overrides :meth:`ProtectionPolicy.transform`."""
    return type(policy).transform is not ProtectionPolicy.transform


def compile_query(query: Query, policies, key: tuple | None = None) -> Plan:
    """The unoptimized plan: one node per pipeline step, in stack order."""
    predicate_text = (
        "" if isinstance(query.predicate, TruePredicate)
        else str(query.predicate)
    )
    nodes = [ScanMask(predicate_text)]
    for index, policy in enumerate(policies):
        nodes.append(PolicyCheck(index, policy.name))
    nodes.append(Evaluate(query.aggregate.value, query.column))
    for index, policy in enumerate(policies):
        nodes.append(Transform(index, policy.name))
    nodes.append(AnswerSink())
    nodes.append(RefuseSink())
    return Plan(
        title=str(query),
        nodes=tuple(nodes),
        key=plan_key(query, policies) if key is None else key,
    )
