"""The typed plan IR: what a compiled query looks like before execution.

A :class:`Plan` is a short linear program over the engine's decision
pipeline — resolve the predicate mask, run each policy's review (any
refusal jumps to the :class:`RefuseSink`), evaluate the aggregate, run
each policy's transform, answer.  The optimizer rewrites node sequences
(:mod:`repro.plan.optimizer`) without changing their meaning: a
:class:`FusedAuditCheck` replaces a run of :class:`PolicyCheck` nodes,
a :class:`FusedPirFetch` replaces a run of :class:`PirFetch` nodes.

Nodes are frozen dataclasses holding only *structure* (policy indices,
parameters, cell lists) — never live engine state — so plans are safe
to cache and share across queries with the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AnswerSink",
    "AuditCheck",
    "Evaluate",
    "FusedAuditCheck",
    "FusedPirFetch",
    "PirFetch",
    "Plan",
    "PlanNode",
    "PolicyCheck",
    "RefuseSink",
    "ScanMask",
    "Transform",
]


@dataclass(frozen=True)
class PlanNode:
    """Base class for plan nodes; subclasses render via :meth:`describe`."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ScanMask(PlanNode):
    """Resolve the predicate to a boolean record mask (memoized engine-side)."""

    predicate: str

    def describe(self) -> str:
        where = self.predicate or "TRUE"
        return f"ScanMask      predicate={where!r} (via mask cache)"


@dataclass(frozen=True)
class PolicyCheck(PlanNode):
    """One policy's ``review``; a refusal reason jumps to the RefuseSink."""

    index: int
    policy: str

    def describe(self) -> str:
        return f"PolicyCheck   [{self.index}] {self.policy} -> Refuse on violation"


@dataclass(frozen=True)
class AuditCheck:
    """One fused check descriptor: kind in {'size', 'overlap', 'sum-audit'}."""

    kind: str
    index: int
    policy: str
    k: int = 0
    max_overlap: int = 0
    chunk: int = 0

    def describe(self) -> str:
        if self.kind == "size":
            return f"size k={self.k} ({self.policy})"
        if self.kind == "overlap":
            return (f"overlap r={self.max_overlap} chunk={self.chunk} "
                    f"incremental ({self.policy})")
        return f"sum-audit ({self.policy})"


@dataclass(frozen=True)
class FusedAuditCheck(PlanNode):
    """A contiguous run of audit reviews sharing one pass over the state.

    The checks keep stack order; the query-set popcount is computed once
    and shared, the packed candidate is cached on the plan runtime, and
    overlap scans resume from the deepest history prefix this plan has
    already cleared for the same candidate.
    """

    checks: tuple[AuditCheck, ...]

    def describe(self) -> str:
        parts = "; ".join(check.describe() for check in self.checks)
        return (f"FusedAudit    {len(self.checks)} checks, one shared pass: "
                f"{parts} -> Refuse on first violation")


@dataclass(frozen=True)
class PirFetch(PlanNode):
    """PIR-retrieve the named blocks (grid cells) for one source query."""

    blocks: tuple[int, ...]
    source: str = ""

    def describe(self) -> str:
        tag = f" for {self.source}" if self.source else ""
        return f"PirFetch      {len(self.blocks)} blocks{tag}"


@dataclass(frozen=True)
class FusedPirFetch(PlanNode):
    """Coalesced PIR fetch: deduped blocks, one ``retrieve_batch`` round.

    ``routing[i]`` maps the i-th original fetch to positions in
    :attr:`blocks`, so per-source results are reassembled exactly.
    """

    blocks: tuple[int, ...]
    requested: int
    routing: tuple[tuple[int, ...], ...]

    def describe(self) -> str:
        saved = self.requested - len(self.blocks)
        return (f"FusedPirFetch {len(self.blocks)} unique blocks for "
                f"{self.requested} requested across {len(self.routing)} "
                f"fetches ({saved} deduped), one retrieve_batch round")


@dataclass(frozen=True)
class Evaluate(PlanNode):
    """Compute the aggregate over the masked records."""

    aggregate: str
    column: str | None

    def describe(self) -> str:
        target = "*" if self.column is None else self.column
        return f"Evaluate      {self.aggregate}({target})"


@dataclass(frozen=True)
class Transform(PlanNode):
    """One policy's ``transform`` over the outgoing answer."""

    index: int
    policy: str

    def describe(self) -> str:
        return f"Transform     [{self.index}] {self.policy}"


@dataclass(frozen=True)
class AnswerSink(PlanNode):
    """Deliver the (possibly transformed) answer; record it answered."""

    def describe(self) -> str:
        return "Answer        deliver the result (answered queries recorded)"


@dataclass(frozen=True)
class RefuseSink(PlanNode):
    """Deliver a typed refusal; record the refused query."""

    def describe(self) -> str:
        return "Refuse        deliver the refusal reason (recorded in history)"


@dataclass(frozen=True)
class Plan:
    """A compiled query: title, cache key, node sequence, passes applied."""

    title: str
    nodes: tuple[PlanNode, ...]
    key: tuple = ()
    passes: tuple[str, ...] = field(default=())

    def render(self) -> str:
        """Numbered one-node-per-line rendering (stable for tests/CLI)."""
        lines = [f"plan: {self.title}"]
        if self.passes:
            lines.append(f"passes: {', '.join(self.passes)}")
        for i, node in enumerate(self.nodes, start=1):
            lines.append(f"  {i}. {node.describe()}")
        return "\n".join(lines)


def explain(before: Plan, after: Plan) -> str:
    """Render a plan before and after optimization, for the CLI and tests."""
    return "\n".join([
        "== before optimization ==",
        before.render(),
        "",
        f"== after optimization ({len(after.passes)} passes) ==",
        after.render(),
    ])
