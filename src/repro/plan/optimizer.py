"""Optimizer passes over the plan IR.

Three explicit passes, each a pure plan-to-plan rewrite (DESIGN.md §10
carries the legality arguments in full):

``prune-noop-nodes``
    Drop :class:`PolicyCheck` nodes whose policy inherits the base
    no-op ``review`` (transform-only policies: noise, sampling,
    camouflage) and :class:`Transform` nodes whose policy inherits the
    base no-op ``transform`` (review-only policies: size control,
    overlap control).  Legal because the base methods are side-effect
    free and decision-free; as a bonus, pruning makes audit checks
    separated only by transform-only policies *contiguous*, enabling
    fusion across them.

``fuse-audit-checks``
    Replace each maximal contiguous run of fusable checks (exact-type
    size control / overlap control / sum audit) with one
    :class:`FusedAuditCheck` that shares a single query-set popcount,
    caches the packed candidate on the plan runtime, and scans the
    packed history incrementally.  Runs never extend across a
    non-fusable check: an unknown policy's ``review`` may carry side
    effects, so its position in the refusal order is load-bearing.
    A single fusable check still fuses when it is an overlap control
    (the incremental scan alone pays); a lone size or sum-audit check
    stays a plain delegating node.

``coalesce-pir-fetches``
    Replace every :class:`PirFetch` in the plan with one
    :class:`FusedPirFetch` at the first fetch's position: blocks are
    deduplicated in first-occurrence order and fetched in a single
    ``retrieve_batch`` round; a routing table rebuilds each original
    fetch's results exactly.  Legal because PIR reconstruction is
    exact for every retrieved index regardless of the randomness
    consumed, so merging fetches changes traffic, never values.

``optimize`` applies them in that order and records the passes that
actually changed the plan in ``Plan.passes``.
"""

from __future__ import annotations

from .compiler import audit_check_for, has_review, has_transform
from .ir import (
    FusedAuditCheck,
    FusedPirFetch,
    PirFetch,
    Plan,
    PlanNode,
    PolicyCheck,
    Transform,
)

__all__ = [
    "PASS_COALESCE_PIR",
    "PASS_FUSE_AUDIT",
    "PASS_PRUNE_NOOP",
    "coalesce_pir_fetches",
    "fuse_audit_checks",
    "optimize",
    "prune_noop_nodes",
]

PASS_PRUNE_NOOP = "prune-noop-nodes"
PASS_FUSE_AUDIT = "fuse-audit-checks"
PASS_COALESCE_PIR = "coalesce-pir-fetches"


def prune_noop_nodes(nodes: tuple[PlanNode, ...],
                     policies) -> tuple[PlanNode, ...]:
    """Drop checks/transforms that inherit the base class no-ops."""
    kept = []
    for node in nodes:
        if isinstance(node, PolicyCheck) and not has_review(
            policies[node.index]
        ):
            continue
        if isinstance(node, Transform) and not has_transform(
            policies[node.index]
        ):
            continue
        kept.append(node)
    return tuple(kept)


def fuse_audit_checks(nodes: tuple[PlanNode, ...],
                      policies) -> tuple[PlanNode, ...]:
    """Fuse maximal contiguous runs of fusable audit checks."""
    out: list[PlanNode] = []
    run: list = []  # pending (node, AuditCheck) pairs

    def flush():
        if not run:
            return
        checks = tuple(check for _, check in run)
        if len(checks) >= 2 or any(c.kind == "overlap" for c in checks):
            out.append(FusedAuditCheck(checks))
        else:
            out.extend(node for node, _ in run)
        run.clear()

    for node in nodes:
        check = (
            audit_check_for(node.index, policies[node.index])
            if isinstance(node, PolicyCheck) else None
        )
        if check is not None:
            run.append((node, check))
            continue
        flush()
        out.append(node)
    flush()
    return tuple(out)


def coalesce_pir_fetches(nodes: tuple[PlanNode, ...]) -> tuple[PlanNode, ...]:
    """Merge all PirFetch nodes into one deduplicated FusedPirFetch."""
    fetches = [node for node in nodes if isinstance(node, PirFetch)]
    if len(fetches) < 2:
        return nodes
    order: dict[int, int] = {}  # block -> position, first occurrence
    routing = []
    for fetch in fetches:
        route = []
        for block in fetch.blocks:
            if block not in order:
                order[block] = len(order)
            route.append(order[block])
        routing.append(tuple(route))
    fused = FusedPirFetch(
        blocks=tuple(order),
        requested=sum(len(f.blocks) for f in fetches),
        routing=tuple(routing),
    )
    out: list[PlanNode] = []
    placed = False
    for node in nodes:
        if isinstance(node, PirFetch):
            if not placed:
                out.append(fused)
                placed = True
            continue
        out.append(node)
    return tuple(out)


def optimize(plan: Plan, policies=()) -> Plan:
    """Apply every pass; record the ones that changed the plan."""
    nodes = plan.nodes
    applied = []
    for name, rewrite in (
        (PASS_PRUNE_NOOP, lambda n: prune_noop_nodes(n, policies)),
        (PASS_FUSE_AUDIT, lambda n: fuse_audit_checks(n, policies)),
        (PASS_COALESCE_PIR, coalesce_pir_fetches),
    ):
        rewritten = rewrite(nodes)
        if rewritten != nodes:
            applied.append(name)
            nodes = rewritten
    return Plan(
        title=plan.title, nodes=nodes, key=plan.key, passes=tuple(applied)
    )
