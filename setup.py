"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs (``pip install -e .``) cannot build a wheel.  This shim
lets ``python setup.py develop`` provide the equivalent editable install.
"""

from setuptools import setup

setup()
