"""Defending an interactive statistical database (paper, Section 3).

A hospital exposes COUNT/SUM/AVG queries over patient data.  This example
walks the classical arms race:

1. no protection             -> direct isolation works;
2. query-set-size control    -> direct isolation refused, but the
                                Schlörer tracker walks right through;
3. + exact SUM auditing      -> the tracker is refused;
4. + output perturbation     -> the tracker's arithmetic breaks down;
5. camouflage intervals      -> answers become intervals.

Run:  python examples/interactive_database_defense.py
"""

from repro.data import patients
from repro.qdb import (
    CamouflageIntervals,
    NoisePerturbation,
    QuerySetSizeControl,
    RandomSampleQueries,
    StatisticalDatabase,
    SumAuditPolicy,
    tracker_attack,
    tracker_success_rate,
)
from repro.sdc import equivalence_classes


def main() -> None:
    pop = patients(250, seed=3)
    unique = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
    ]
    print(f"{pop.n_rows} patients; {len(unique)} unique on (height, weight)\n")
    # Pick a unique target whose tracker padding set is large enough to
    # slip past size control (the attack needs |C1| in [k, n-k]).
    target = next(
        t for t in unique
        # |C1| >= k+1 so the tracker set C1 AND NOT C2 still has >= k records.
        if (pop["height"] == pop["height"][t]).sum() >= 6
    )
    h, w = pop["height"][target], pop["weight"][target]

    # 1. Unprotected: ask for the target directly.
    naked = StatisticalDatabase(pop)
    answer = naked.ask(
        f"SELECT AVG(blood_pressure) WHERE height = {h} AND weight = {w}"
    )
    print(f"1. unprotected direct query    -> {answer.value:.0f} mmHg "
          "(respondent fully disclosed)")

    # 2. Size control refuses it... but the tracker succeeds.
    controlled = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    direct = controlled.ask(
        f"SELECT AVG(blood_pressure) WHERE height = {h} AND weight = {w}"
    )
    print(f"2. size control direct query   -> refused: {direct.reason}")
    result = tracker_attack(
        controlled, pop, target, ["height", "weight"], "blood_pressure"
    )
    print(f"   ...but the tracker infers   -> {result.inferred_value:.0f} mmHg "
          f"(truth {result.true_value:.0f}; queries={result.queries_asked})")

    # 3-4. Success rate across ten targets under stronger policies.
    policies = {
        "size control only": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5)]
        ),
        "+ SUM auditing": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), SumAuditPolicy()]
        ),
        "+ output noise (sd=20)": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), NoisePerturbation(20.0)], seed=1
        ),
        "+ random sampling (90%)": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), RandomSampleQueries(0.9)]
        ),
    }
    trackable = [
        t for t in unique
        if (pop["height"] == pop["height"][t]).sum() >= 6
    ][:10]
    print(f"\nTracker success against {len(trackable)} unique targets "
          "(padding sets large enough to pass size control):")
    for name, factory in policies.items():
        rate = tracker_success_rate(
            factory, pop, ["height", "weight"], "blood_pressure",
            trackable, tolerance=2.0,
        )
        print(f"   {name:24s} {rate * 100:5.0f}%")

    # 5. Camouflage: interval answers.
    camo = StatisticalDatabase(pop, [CamouflageIntervals(3)])
    interval = camo.ask("SELECT AVG(blood_pressure) WHERE height > 170")
    lo, hi = interval.interval
    print(f"\n5. camouflage interval answer -> AVG in [{lo:.1f}, {hi:.1f}]")

    print(
        "\nNote (the paper's point): every one of these defences requires "
        "the owner\nto inspect the queries — the user has no privacy here."
    )


if __name__ == "__main__":
    main()
