"""Releasing census microdata with categorical masking (Sections 2 & 6).

Statistical offices — the paper's original SDC setting — face categorical
quasi-identifiers (zip code, sex) next to numeric ones (age).  This
example builds generalization hierarchies, searches the full-domain
lattice for the minimal recoding achieving k-anonymity, applies PRAM to
the sensitive categorical attribute, and reports what each step costs.

Run:  python examples/census_release.py
"""

import collections

import numpy as np

from repro.data import IntervalHierarchy, TaxonomyHierarchy, census
from repro.sdc import (
    Pram,
    anonymity_level,
    is_k_anonymous,
    minimal_generalization,
    sensitivity_level,
    uniqueness_rate,
)

QI = ["age", "zipcode", "sex"]


def main() -> None:
    pop = census(500, seed=17, n_zipcodes=12).drop(["person_id"])
    print(f"Census file: {pop.n_rows} respondents, quasi-identifiers {QI}")
    print(f"  sample uniques on {QI}: {uniqueness_rate(pop, QI):.0%}")
    print(f"  3-anonymous: {is_k_anonymous(pop, 3, QI)}\n")

    # Hierarchies: age in doubling intervals; zip codes up a geography
    # tree; sex only suppressible.
    zip_tree = {z: f"district-{z[:4]}" for z in sorted(set(pop["zipcode"]))}
    zip_tree.update({d: "Tarragona-province"
                     for d in set(zip_tree.values())})
    hierarchies = {
        "age": IntervalHierarchy(base_width=5, n_levels=4, origin=0),
        "zipcode": TaxonomyHierarchy(zip_tree),
        "sex": TaxonomyHierarchy({"M": "*", "F": "*"}),
    }

    for k in (3, 5, 10):
        result = minimal_generalization(
            pop, hierarchies, k=k, max_suppression=0.03
        )
        print(
            f"k={k:<3d} minimal recoding levels {result.levels} "
            f"(+{len(result.suppressed)} records suppressed) -> "
            f"achieved k={anonymity_level(result.data, QI)}"
        )

    # Release at k = 5 and check the confidential attribute's diversity.
    recoded = minimal_generalization(pop, hierarchies, 5, 0.03).data
    p = sensitivity_level(recoded, ["disease"], QI)
    print(f"\np-sensitivity of 'disease' within classes: p = {p}")

    # PRAM the confidential attribute regardless: record-level plausible
    # deniability on top of class-level diversity (paper footnote 3 names
    # the homogeneity risk p-sensitivity addresses).
    print("applying invariant PRAM to 'disease' (retention 0.85)...")
    release = Pram(retention=0.85, columns=["disease"]).mask(
        recoded, np.random.default_rng(3)
    )

    before = collections.Counter(recoded["disease"])
    after = collections.Counter(release["disease"])
    print("\ndisease frequencies (recoded -> PRAMmed, invariant PRAM):")
    for value in sorted(before):
        print(f"  {value:14s} {before[value]:>4d} -> {after[value]:>4d}")

    flipped = float(np.mean(release["disease"] != recoded["disease"]))
    print(f"\nrecord-level flips: {flipped:.0%} "
          "(plausible deniability for every respondent)")
    print(f"release is 5-anonymous: {is_k_anonymous(release, 5, QI)}")


if __name__ == "__main__":
    main()
