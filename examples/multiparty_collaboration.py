"""Crypto PPDM: three hospitals mine jointly, sharing nothing (Section 4).

Three hospitals hold horizontal partitions of a patient registry.  They
want (a) the patients they share, (b) joint statistics, and (c) a joint
decision tree — all without any record leaving its silo.  The transcripts
prove it: a competitor reading every exchanged message recovers 0% of the
records, versus 100% under naive pooling.  The flip side, per the paper:
every party sees every computation — no user privacy is possible.

Run:  python examples/multiparty_collaboration.py
"""

import random

import numpy as np

from repro.data import census, horizontal_partition
from repro.mining import accuracy
from repro.smc import (
    SecureID3,
    Transcript,
    naive_pooled_datasets,
    plaintext_exposure,
    private_set_intersection,
    ring_secure_sum,
    secure_mean,
)


def main() -> None:
    registry = census(360, seed=8)
    rich = np.where(registry["income"] > np.median(registry["income"]), "Y", "N")
    registry = registry.with_column("rich", rich)
    hospitals = horizontal_partition(registry, 3, seed=1)
    names = ["General", "Mercy", "StJude"]
    for name, part in zip(names, hospitals):
        print(f"{name:8s} holds {part.n_rows} records")

    # (a) Which patient ids do General and Mercy share?  (PSI)
    shared_ids = private_set_intersection(
        list(hospitals[0]["person_id"]) + ["C999999"],
        list(hospitals[1]["person_id"]) + ["C999999"],
        rng=random.Random(2),
    )
    print(f"\nPSI: General and Mercy share {len(shared_ids)} patient id(s): "
          f"{sorted(shared_ids)}")

    # (b) Joint statistics by secure sum.
    transcript = Transcript()
    rng = random.Random(3)
    counts = [h.n_rows for h in hospitals]
    total = ring_secure_sum(counts, rng=rng, transcript=transcript)
    income_sums = [float(h["income"].sum()) for h in hospitals]
    joint_income = secure_mean(income_sums, rng=rng, transcript=transcript)
    # secure_mean averages the per-party sums; rescale to the per-patient mean.
    mean_income = joint_income * len(hospitals) / total
    print(f"\nSecure sums: joint cohort n={total}, "
          f"joint mean income={mean_income:,.0f}")

    # (c) Joint decision tree by secure ID3.
    model = SecureID3(["sex", "education", "disease"], "rich", max_depth=3)
    model.fit(hospitals, random.Random(4))
    predictions = model.predict(registry)
    print(
        f"Secure ID3: {model.count_queries} secure count queries, "
        f"{len(model.transcript)} messages, joint-tree accuracy "
        f"{accuracy(registry['rich'], predictions):.2f}"
    )

    # Leakage audit: what does a wiretapping competitor learn?
    private = {
        f"P{i}": [float(v) for v in h["income"]]
        for i, h in enumerate(hospitals)
    }
    secure_exposure = plaintext_exposure(model.transcript, private)
    naive_transcript = Transcript()
    naive_pooled_datasets(hospitals, naive_transcript)
    naive_exposure = plaintext_exposure(naive_transcript, private)
    print(
        f"\nRecord exposure on the wire: secure protocols "
        f"{secure_exposure * 100:.0f}% vs naive pooling "
        f"{naive_exposure * 100:.0f}%"
    )
    print(
        "\nNote (the paper's point): the analyses run here were known to "
        "all three\nhospitals — crypto PPDM offers owner privacy but no "
        "user privacy."
    )


if __name__ == "__main__":
    main()
