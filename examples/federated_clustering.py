"""Federated clustering: secure k-means across three clinics (Section 4).

Three clinics each hold part of a patient cohort whose biomarkers form
natural clusters.  They jointly compute the k-means centroids — every
Lloyd statistic travels as a masked secure sum — and verify against the
trusted-third-party baseline.  A wiretapper recovers 0% of the records.

Run:  python examples/federated_clustering.py
"""

import random

import numpy as np

from repro.data import sparse_clusters
from repro.smc import plaintext_exposure, pooled_kmeans, secure_kmeans


def main() -> None:
    cohort = sparse_clusters(
        360, 2, n_clusters=3, cluster_std=0.4, seed=5
    ).rename({"x0": "marker_a", "x1": "marker_b"})
    clinics = [cohort.select(np.arange(i, 360, 3)) for i in range(3)]
    columns = ["marker_a", "marker_b"]
    for i, clinic in enumerate(clinics):
        print(f"clinic {i}: {clinic.n_rows} patients")

    secure = secure_kmeans(
        clinics, columns, n_clusters=3, rng=random.Random(1)
    )
    pooled = pooled_kmeans(cohort, columns, n_clusters=3)

    print(f"\nsecure k-means converged in {secure.iterations} iterations, "
          f"{secure.secure_sums} secure sums, "
          f"{len(secure.transcript)} messages")
    print("centroids (secure vs pooled baseline):")
    for s, p in zip(
        sorted(secure.centroids.tolist()), sorted(pooled.centroids.tolist())
    ):
        print(f"  ({s[0]:7.3f}, {s[1]:7.3f})   vs   "
              f"({p[0]:7.3f}, {p[1]:7.3f})")

    assignments = secure.assign(cohort.matrix(columns))
    sizes = np.bincount(assignments, minlength=3)
    print(f"joint cluster sizes: {sizes.tolist()}")

    private = {
        f"P{i}": [float(v) for c in columns for v in clinic[c]]
        for i, clinic in enumerate(clinics)
    }
    exposure = plaintext_exposure(secure.transcript, private)
    print(f"\nwiretapper's record recovery from the transcript: "
          f"{exposure:.0%}")
    print("every clinic observed every aggregation step — "
          "owner privacy without user privacy, as the paper says.")


if __name__ == "__main__":
    main()
