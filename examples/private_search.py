"""User privacy: private retrieval after the AOL incident (Section 1).

The paper's motivating scandal: in August 2006 AOL published 36 million
user queries; users were re-identified from their query histories.  This
example runs the same workload against (a) a plaintext search index and
(b) the same index behind two PIR schemes, and measures what the server
can learn — plus the paper's warning that PIR over *sensitive* records
protects the user while destroying respondent privacy (Section 3 attack).

Run:  python examples/private_search.py
"""

import numpy as np

from repro.attacks import isolation_attack
from repro.data import dataset_2
from repro.pir import (
    KeywordPIR,
    PrivateAggregateIndex,
    SquareSchemePIR,
    TwoServerXorPIR,
    log_matching_attack,
    make_user_population,
    profile_itpir,
    profile_plaintext_retrieval,
    run_search_sessions,
)


def main() -> None:
    # A tiny "search engine" index: 128 cached result blocks.
    documents = [f"result-page-{i}".encode() for i in range(128)]

    # (a) Plaintext retrieval: the server sees every request.
    plain = profile_plaintext_retrieval(len(documents), trials=300)
    print("Plaintext search server:")
    print(f"  server guesses the user's query {plain.success_rate * 100:.0f}% "
          f"of the time -> user privacy {plain.user_privacy:.2f}")

    # (b) The same index behind two-server XOR PIR.
    pir = TwoServerXorPIR(documents)
    fetched = pir.retrieve(17, 0).rstrip(b"\0").decode()
    report = profile_itpir(pir, trials=300, rng=1)
    print("\nTwo-server XOR PIR:")
    print(f"  retrieved: {fetched!r}")
    print(f"  adversarial server success {report.success_rate * 100:.1f}% "
          f"(chance {100 / pir.n:.1f}%) -> user privacy {report.user_privacy:.2f}")

    # Communication: linear vs square scheme.
    square = SquareSchemePIR(documents)
    square.retrieve(17, 0)
    print("\nCommunication per query (upstream):")
    print(f"  linear scheme : {2 * pir.n} bits")
    print(f"  square scheme : {square.upstream_bits} bits")

    # Keyword lookups: private binary search, hit or miss in the same
    # number of rounds.
    directory = KeywordPIR({f"handle-{i:03d}": 1000 + i for i in range(64)})
    hit = directory.lookup("handle-042", 3)
    miss = directory.lookup("nobody", 4)
    print(f"\nKeyword PIR: handle-042 -> {hit}; unknown key -> {miss} "
          f"({directory.retrievals} positional retrievals total)")

    # The AOL effect itself: histories fingerprint users.
    users = make_user_population(80, seed=9)
    plain_log = run_search_sessions(users, 40, use_pir=False, seed=10)
    pir_log = run_search_sessions(users, 40, use_pir=True, seed=10)
    matched_plain = log_matching_attack(plain_log, users, 11)
    matched_pir = log_matching_attack(pir_log, users, 11)
    print(
        f"\nAOL-style log matching over 80 users: plaintext "
        f"{matched_plain.reidentification_rate:.0%} re-identified, "
        f"PIR {matched_pir.reidentification_rate:.0%} "
        f"(chance {matched_plain.chance_rate:.0%})"
    )

    # The paper's warning: PIR over unmasked confidential records lets a
    # *user* privately re-identify respondents (Section 3).
    ds2 = dataset_2()
    index = PrivateAggregateIndex(
        ds2, ["height", "weight"], "blood_pressure",
        edges={"height": [150, 165, 180, 200], "weight": [50, 80, 105, 130]},
    )
    sweep = isolation_attack(index, ds2.n_rows)
    print(
        f"\nBut PIR over raw patient data (Dataset 2): a client privately "
        f"sweeps\n{sweep.cells_probed} cells and isolates "
        f"{len(sweep.victims)} respondents, e.g. blood pressure "
        f"{sweep.victims[0].confidential_value:.0f} mmHg —"
    )
    print("user privacy without respondent privacy, exactly as the paper warns.")


if __name__ == "__main__":
    main()
