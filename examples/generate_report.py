"""Generate the one-file markdown reproduction report.

Run:  python examples/generate_report.py [output.md]
"""

import sys
from pathlib import Path

from repro.core.report import full_report


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "reproduction_report.md"
    )
    report = full_report(seed=0)
    target.write_text(report)
    print(f"wrote {target} ({len(report.splitlines())} lines)")
    print()
    print(report)


if __name__ == "__main__":
    main()
