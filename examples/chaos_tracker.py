"""A tracker-audited session surviving storage failures (DESIGN.md §7).

A hospital's statistical database runs its usual defences (size control
+ exact SUM auditing) while the storage layer degrades underneath it:
one replica crashes mid-session, the other occasionally stalls past its
deadline, and finally the whole backend goes dark.  The engine's job is
to keep the *session* — and its privacy accounting — alive:

* failover-served answers come back correct but typed ``Degraded``;
* a total blackout yields a typed ``Refusal`` (reason ``backend:``),
  never an exception and never a wrong answer;
* every fallback decision is logged to telemetry and printed back as
  incident forensics at the end.

Run:  python examples/chaos_tracker.py
"""

import tempfile
from pathlib import Path

from repro.data import patients
from repro.faults import Fault, FaultPlan, ReplicatedBackend
from repro.qdb import (
    Degraded,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
)
from repro.telemetry import TraceReport, instrument, read_trace


def describe(answer) -> str:
    if answer.refused:  # policy refusals and typed backend Refusals alike
        return f"REFUSED  ({answer.reason})"
    value = f"{answer.value:.2f}"
    if isinstance(answer, Degraded):
        return f"{value}  [degraded: {answer.detail}]"
    return value


def main() -> None:
    pop = patients(150, seed=3)
    plan = FaultPlan(
        [
            # Replica 0 dies after serving two reads.
            Fault("crash", "qdb.replica:0", after=2),
            # Replica 1 stalls 80 ms (past the 50 ms first deadline)
            # on half of its reads -- survivable via retry.
            Fault("delay", "qdb.replica:1", delay=0.08, probability=0.5),
        ],
        seed=11,
    )
    backend = ReplicatedBackend(pop, n_replicas=2, plan=plan)
    db = StatisticalDatabase(
        backend, [QuerySetSizeControl(5), SumAuditPolicy()]
    )

    workload = [
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height > 170",
        "SELECT SUM(weight) WHERE blood_pressure > 155",
        "SELECT AVG(weight) WHERE height <= 170",
        "SELECT COUNT(*)",  # refused by size control, storage aside
    ]

    trace = Path(tempfile.gettempdir()) / "chaos-tracker.jsonl"
    with instrument.session(trace):
        print(f"{pop.n_rows} patients, 2 storage replicas "
              "(one crashing, one slow)\n")
        for text in workload:
            print(f"  {text:<48} -> {describe(db.ask(text))}")

        # The backend goes completely dark: every replica down.
        blackout = ReplicatedBackend(
            pop, n_replicas=2,
            plan=FaultPlan(
                [Fault("crash", "qdb-dark.replica:0", after=0),
                 Fault("crash", "qdb-dark.replica:1", after=0)],
                seed=11,
            ),
            name="qdb-dark",
        )
        dark = StatisticalDatabase(blackout, [QuerySetSizeControl(5)])
        print("\nblackout (all replicas down):")
        answer = dark.ask("SELECT SUM(weight) WHERE height > 170")
        print(f"  SELECT SUM(weight) WHERE height > 170"
              f"            -> {describe(answer)}")

    print(f"\nsession stats: {db.queries_asked} asked, "
          f"{db.degraded_answers} degraded, "
          f"{backend._c_failovers.value} failovers, "
          f"{dark.backend_refusals} backend refusal(s)")

    # The incident is reconstructable from the capture alone.
    report = TraceReport(str(trace), read_trace(trace))
    print("\nforensics from the trace "
          f"({len(report.degradations)} degradation decisions):")
    for event in report.degradations:
        print(f"  [{event['component']}] {event['decision']}")
    print(f"\nfull report: repro telemetry report {trace}")


if __name__ == "__main__":
    main()
