"""The pharmaceutical-company scenario (paper, Section 2).

A company ran a hypertension drug trial.  It wants to let researchers
analyze the data without (a) re-identifying any patient and (b) handing
competitors its dataset.  This example compares every masking method in
the library on the risk/utility frontier, then publishes the winner
behind a PIR aggregate endpoint so querying researchers keep their
privacy too (Section 6's full stack).

Run:  python examples/clinical_trial_release.py
"""

import numpy as np

from repro.attacks import extraction_from_release
from repro.core import KAnonymousPIRPipeline
from repro.data import patients
from repro.sdc import (
    Condensation,
    CorrelatedNoise,
    Microaggregation,
    MondrianKAnonymizer,
    RankSwap,
    UncorrelatedNoise,
    anonymity_level,
    assess_risk,
    assess_utility,
)

QI = ["height", "weight", "age"]


def main() -> None:
    trial = patients(600, seed=42)
    print(f"Trial data: {trial.n_rows} patients, "
          f"quasi-identifiers {QI}, confidential: blood_pressure, aids\n")

    methods = [
        Microaggregation(3), Microaggregation(10),
        MondrianKAnonymizer(5),
        Condensation(10),
        UncorrelatedNoise(0.5), CorrelatedNoise(0.3),
        RankSwap(15),
    ]

    header = (f"{'method':26s} {'k-anon':>6s} {'linkage':>8s} "
              f"{'owner-extr':>10s} {'IL1s':>6s} {'cov-err':>8s}")
    print(header)
    print("-" * len(header))
    rng = np.random.default_rng(7)
    for method in methods:
        release = method.mask(trial, rng)
        risk = assess_risk(trial, release, QI)
        utility = assess_utility(trial, release, QI)
        extraction = extraction_from_release(trial, release, QI, 0.15)
        k = anonymity_level(release, QI)
        print(
            f"{method.name:26s} {k:>6d} {risk.linkage_rate:>8.3f} "
            f"{extraction.extraction_rate:>10.3f} {utility.il1s:>6.3f} "
            f"{utility.covariance_discrepancy:>8.3f}"
        )

    # Publish: k-anonymous masking + PIR endpoint (Section 6 stack).
    print("\nPublishing microaggregated (k=5) data behind a PIR endpoint...")
    pipeline = KAnonymousPIRPipeline(
        trial, k=5, value_column="blood_pressure",
        edges={
            "height": list(np.linspace(140, 210, 8)),
            "weight": list(np.linspace(40, 140, 8)),
        },
    )
    audit = pipeline.audit()
    print(f"release k-anonymity: {audit.k_achieved} (required {audit.k_required})")
    print(f"grid cells isolating < k respondents: {audit.singleton_cells}")
    print(f"audit passed: {audit.passed}")

    result = pipeline.query({"height": (160.0, 180.0)})
    print(
        f"\nA researcher privately asks AVG pressure for heights in "
        f"[160, 180): count={result.count}, avg={result.average:.1f} mmHg"
    )
    print("The PIR servers saw only random-looking cell subsets.")


if __name__ == "__main__":
    main()
