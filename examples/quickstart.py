"""Quickstart: the three-dimensional privacy framework in five minutes.

Reproduces the paper's two tables end to end:

1. Table 1 — the toy patient datasets and their (non-)anonymity;
2. Table 2 — the empirical technology scoring across the three dimensions;
3. the Section 6 guideline engine.

Run:  python examples/quickstart.py
"""

from repro.core import (
    PrivacyDimension,
    format_table2,
    recommend,
    score_technologies,
)
from repro.data import dataset_1, dataset_2, format_table_1
from repro.sdc import anonymity_level, is_k_anonymous


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Table 1: the paper's toy datasets.
    # ------------------------------------------------------------------
    print(format_table_1())
    print()

    ds1, ds2 = dataset_1(), dataset_2()
    print(
        f"Dataset 1 anonymity level on (height, weight): "
        f"k = {anonymity_level(ds1)}  "
        f"(3-anonymous: {is_k_anonymous(ds1, 3)})"
    )
    print(
        f"Dataset 2 anonymity level on (height, weight): "
        f"k = {anonymity_level(ds2)}  "
        f"(3-anonymous: {is_k_anonymous(ds2, 3)})"
    )
    print()

    # ------------------------------------------------------------------
    # 2. Table 2: score all eight technology classes empirically.
    # ------------------------------------------------------------------
    comparison = score_technologies(seed=0)
    print(format_table2(comparison))
    print()

    # ------------------------------------------------------------------
    # 3. Section 6: which stack satisfies all three dimensions?
    # ------------------------------------------------------------------
    print("To protect respondents, owner AND users simultaneously:")
    for rec in recommend(set(PrivacyDimension)):
        print(f"  -> {rec.description}")
        print(f"     {rec.rationale}")


if __name__ == "__main__":
    main()
