PYTHON ?= python

.PHONY: test bench bench-check bench-refresh

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Time the hot-path kernels and write BENCH_hotpaths.json.
bench:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner

# Fail (exit nonzero) when any kernel regresses past baseline x tolerance.
bench-check:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --check

# Refresh the committed benchmark record after an intentional perf change;
# copy the printed normalized values into benchmarks/baselines.py too.
bench-refresh:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --output BENCH_hotpaths.json
