PYTHON ?= python

.PHONY: verify test bench bench-check bench-qdb bench-kernels bench-plan \
	bench-refresh telemetry-smoke observe-smoke observe-serve-smoke \
	serve-smoke trace-smoke chaos doctest-faults doctest-observatory \
	doctest-serving doctest-requesttrace

.DEFAULT_GOAL := verify

# The default gate: tests, benchmark regressions, the kernel-tier speedup
# gates, telemetry schema drift, the observatory's detection invariants,
# the resident service's end-to-end HTTP/SSE gate, the sharded serving
# runtime's end-to-end smoke, fault-layer/observatory/serving doctests,
# and the chaos scenario's privacy invariants.
verify: test bench-check bench-kernels bench-plan telemetry-smoke \
	observe-smoke observe-serve-smoke serve-smoke trace-smoke \
	doctest-faults doctest-observatory doctest-serving \
	doctest-requesttrace chaos

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Time the hot-path kernels and write BENCH_hotpaths.json.
bench:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner

# Fail (exit nonzero) when any kernel regresses past baseline x tolerance.
bench-check:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --check

# Query-engine kernels only (packed overlap, incremental sum audit, batched
# workloads) against their timed seed replicas; `--list` self-diagnoses
# kernel-name typos.
bench-qdb:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --check --output /dev/null \
		--kernels qdb_overlap_h2000 seed_qdb_overlap qdb_sum_audit \
		seed_qdb_sum_audit qdb_ask_batch

# The word-level kernel tier (ISSUE 6) against the frozen uint8 pipelines
# it replaced, plus the memory-mapped larger-than-RAM retrieval kernel;
# fails when a *_vs_uint8 speedup gate in benchmarks/baselines.py breaks
# or when the active backend differs from the one the baselines recorded.
bench-kernels:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --check --output /dev/null \
		--kernels pir_batch64_retrieve_n65536 \
		ref_uint8_pir_batch64_retrieve_n65536 qdb_overlap_h2000 \
		seed_qdb_overlap ref_uint8_qdb_overlap_h2000 \
		pir_memmap_batch8_retrieve_n262144

# The query-plan optimizer gates (ISSUE 7): the fused three-policy audit
# against the legacy per-policy pipeline (>= 2x), the warm plan cache
# against cold per-query compilation (>= 1.5x), and the memmap-backed
# out-of-core query history against its absolute baseline.
bench-plan:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --check --output /dev/null \
		--kernels qdb_fused_audit_h2000 ref_unfused_qdb_audit_h2000 \
		qdb_plan_cache_batch ref_cold_plan_ask_batch \
		qdb_memmap_history_overlap

# Refresh the committed benchmark record after an intentional perf change;
# copy the printed normalized values into benchmarks/baselines.py too.
bench-refresh:
	PYTHONPATH=src $(PYTHON) -m benchmarks.runner --output BENCH_hotpaths.json

# Run the instrumented S1/S3a scenario and validate its JSONL capture
# against the span schema; fails on schema drift or lost refusal forensics.
telemetry-smoke:
	PYTHONPATH=src $(PYTHON) -m repro telemetry smoke

# Replay the tracker scenario through the streaming observatory and fail
# unless the expected alerts — and only those — fire, with the tracker
# warning raised before the attack completes.
observe-smoke:
	PYTHONPATH=src $(PYTHON) -m repro observe --smoke

# Boot the resident observatory service on an ephemeral port and drive it
# with the deterministic concurrent load generator (zipfian user mix plus
# an injected tracker cohort); fails unless the tracker-probe alert
# arrives over real HTTP/SSE, the OpenMetrics scrape is compliant, the
# cohort's session timeline shows its refusals, and the incident bundle's
# embedded replay proof verifies.
observe-serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro observe serve --smoke

# Boot the sharded serving runtime (router + admission + shared audit)
# under the observatory service and the runtime-mode load generator;
# fails unless mixed load spreads over >= 2 shards, the *split* tracker
# cohort (padding and tracker halves on distinct shards) is refused by
# the shared cross-shard audit view, and the tracker-probe critical
# alert crosses the real HTTP/SSE surface.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve --smoke

# The request-tracing gate: the same full stack over real HTTP/SSE, then —
# from the JSONL capture alone — reconstruct complete 7-stage waterfalls
# for both an answered query and the split-tracker cohort's cross-shard
# refusal, and require both trace ids to have crossed the SSE `trace`
# frame stream and the /traces endpoint.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve --trace-smoke

# The fault layer's executable documentation: every module-level example
# in src/repro/faults must keep running exactly as written.
doctest-faults:
	PYTHONPATH=src $(PYTHON) -m pytest --doctest-modules src/repro/faults -q

# Same contract for the observatory package: detector and exporter
# examples are executable and must stay truthful.
doctest-observatory:
	PYTHONPATH=src $(PYTHON) -m pytest --doctest-modules \
		src/repro/telemetry/observatory -q

# The serving runtime's executable documentation: router determinism,
# token-bucket admission under a fake clock, and the env-knob table all
# run exactly as their docstrings show.
doctest-serving:
	PYTHONPATH=src $(PYTHON) -m pytest --doctest-modules src/repro/serving \
		src/repro/envdoc.py -q

# The tracing layer's executable documentation: the synthetic-capture
# waterfall walkthrough in requesttrace.py and the live sampling example
# in profiler.py run exactly as written.
doctest-requesttrace:
	PYTHONPATH=src $(PYTHON) -m pytest --doctest-modules \
		src/repro/telemetry/requesttrace.py \
		src/repro/telemetry/profiler.py -q

# Scripted failure scenario at a fixed seed: byzantine PIR replicas,
# crashed SMC parties, failing qdb backends; exits nonzero when any
# privacy/integrity invariant breaks or a degradation decision is lost.
chaos:
	PYTHONPATH=src $(PYTHON) -m repro faults chaos --seed 3
