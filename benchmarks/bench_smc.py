"""S4a — owner privacy without user privacy: crypto PPDM protocols.

Benchmarks every secure-computation protocol and prints the transcript
leakage audit: exposure ~0 for the secure protocols, 1.0 for naive
pooling — while every party sees every computation (no user privacy).
"""

import random

import numpy as np

from repro.data import census, horizontal_partition
from repro.smc import (
    SecureID3,
    Transcript,
    millionaires,
    naive_pooled_sum,
    plaintext_exposure,
    private_set_intersection,
    ring_secure_sum,
    secure_scalar_product,
)


def test_s4a_secure_sum(benchmark):
    values = [1234, 5678, 9012, 3456]

    def run():
        transcript = Transcript()
        total = ring_secure_sum(values, rng=random.Random(1),
                                transcript=transcript)
        return total, transcript

    total, transcript = benchmark(run)
    private = {f"P{i}": [v] for i, v in enumerate(values)}
    naive_t = Transcript()
    naive_pooled_sum(values, naive_t)
    print()
    print("S4a: 4-party secure sum")
    print(f"    result {total} (correct: {sum(values)}), "
          f"messages {len(transcript)}")
    print(f"    exposure: secure {plaintext_exposure(transcript, private):.0%} "
          f"vs naive pooling {plaintext_exposure(naive_t, private):.0%}")
    assert total == sum(values)
    assert plaintext_exposure(transcript, private) == 0.0


def test_s4a_scalar_product(benchmark):
    x = list(range(1, 21))
    y = list(range(21, 41))

    def run():
        return secure_scalar_product(
            x, y, key_bits=160, rng=random.Random(2)
        ).reveal()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = sum(a * b for a, b in zip(x, y))
    print()
    print(f"S4a: secure scalar product of 20-vectors -> {result} "
          f"(correct: {expected})")
    assert result == expected


def test_s4a_private_set_intersection(benchmark):
    set_a = [f"patient-{i}" for i in range(0, 60, 2)]
    set_b = [f"patient-{i}" for i in range(0, 60, 3)]

    def run():
        return private_set_intersection(set_a, set_b, rng=random.Random(3))

    shared = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = set(set_a) & set(set_b)
    print()
    print(f"S4a: PSI over 30+20 ids -> {len(shared)} shared "
          f"(correct: {len(expected)})")
    assert shared == expected


def test_s4a_millionaires(benchmark):
    def run():
        return [
            millionaires(a, b, rng=random.Random(a * 31 + b))
            for a, b in ((10, 3), (3, 10), (7, 7))
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"S4a: Yao millionaires (10>=3, 3>=10, 7>=7) -> {results}")
    assert results == [True, False, True]


def test_s4a_secure_id3(benchmark):
    pop = census(240, seed=5)
    rich = np.where(pop["income"] > np.median(pop["income"]), "Y", "N")
    pop = pop.project(["sex", "education", "disease"]).with_column("rich", rich)
    parts = horizontal_partition(pop, 3, seed=1)

    def run():
        model = SecureID3(["sex", "education", "disease"], "rich", max_depth=3)
        model.fit(parts, random.Random(6))
        return model

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    pred = model.predict(pop)
    acc = float(np.mean(pred == pop["rich"]))
    print()
    print("S4a [18]: secure ID3 across 3 hospitals")
    print(f"    {model.count_queries} secure count queries, "
          f"{len(model.transcript)} messages, accuracy {acc:.2f}")
    print("    every party observed every count query "
          "(computation known to all -> no user privacy)")
    assert acc > 0.5
