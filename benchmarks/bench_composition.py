"""A7 — composition attacks: why one-shot guarantees are not enough.

Two experiments sharpening the paper's respondent-privacy story:

* **intersection attack** — two independently 5-anonymous releases of the
  same population compose into substantial re-identification;
* **variance tracker** — the interactive engine's VARIANCE aggregate
  gives an attacker yet another arithmetic channel (SUM and VARIANCE of
  padding sets reveal an isolated record's value), reinforcing why exact
  auditing must cover every linear-algebraically useful aggregate.
"""

from repro.attacks import intersection_attack
from repro.data import patients
from repro.qdb import StatisticalDatabase
from repro.sdc import Microaggregation, MondrianKAnonymizer, anonymity_level

QI = ["height", "weight", "age"]


def test_a7_intersection_attack(benchmark):
    pop = patients(300, seed=7)

    def run():
        release_a = Microaggregation(5).mask(pop)
        release_b = MondrianKAnonymizer(5).mask(pop)
        return (
            anonymity_level(release_a, QI),
            anonymity_level(release_b, QI),
            intersection_attack(release_a, release_b, QI, QI),
        )

    k_a, k_b, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A7: intersection of two k-anonymous releases")
    print(f"    release A (MDAV):     k = {k_a}")
    print(f"    release B (Mondrian): k = {k_b}")
    print(f"    composed: {report.singletons_after_intersection}/"
          f"{report.population} respondents uniquely pinned "
          f"({report.reidentified_rate:.0%}); mean joint class "
          f"{report.mean_intersection_size:.2f}")
    assert k_a >= 5 and k_b >= 5
    assert report.reidentified_rate > 0.1


def test_a7_variance_channel(benchmark):
    pop = patients(300, seed=7)

    def run():
        db = StatisticalDatabase(pop)
        mean_all = db.ask("SELECT AVG(blood_pressure) WHERE height > 0").value
        var_all = db.ask(
            "SELECT VARIANCE(blood_pressure) WHERE height > 0"
        ).value
        return mean_all, var_all

    mean_all, var_all = benchmark(run)
    truth_mean = float(pop["blood_pressure"].mean())
    truth_var = float(pop["blood_pressure"].var())
    print()
    print("A7: VARIANCE/STDDEV aggregates answer exactly on the engine")
    print(f"    AVG      = {mean_all:.2f} (truth {truth_mean:.2f})")
    print(f"    VARIANCE = {var_all:.2f} (truth {truth_var:.2f})")
    assert mean_all == truth_mean
    assert var_all == truth_var
