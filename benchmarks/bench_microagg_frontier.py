"""A3 — the microaggregation k frontier (ablation).

Sweeps the anonymity parameter k and prints the disclosure-risk /
information-loss frontier: linkage risk must fall like 1/k while IL1s
rises — the trade-off every Section 6 deployment must navigate.
"""

import numpy as np

from repro.data import patients
from repro.sdc import (
    Microaggregation,
    anonymity_level,
    assess_utility,
    distance_linkage_rate,
)

QI = ["height", "weight", "age"]
KS = [2, 3, 5, 10, 20]


def test_a3_microaggregation_frontier(benchmark):
    pop = patients(500, seed=13)

    def run():
        rows = []
        for k in KS:
            release = Microaggregation(k).mask(pop)
            linkage = distance_linkage_rate(pop, release, QI)
            utility = assess_utility(pop, release, QI)
            rows.append((k, anonymity_level(release, QI), linkage,
                         utility.il1s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A3: microaggregation frontier (risk falls, loss rises)")
    print(f"    {'k':>4s} {'k-anon':>7s} {'linkage':>8s} {'IL1s':>6s}")
    for k, level, linkage, il in rows:
        print(f"    {k:>4d} {level:>7d} {linkage:>8.3f} {il:>6.3f}")

    linkages = [r[2] for r in rows]
    losses = [r[3] for r in rows]
    # Shape: linkage ~ 1/k (monotone down), information loss monotone up.
    assert all(a >= b - 0.02 for a, b in zip(linkages, linkages[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(losses, losses[1:]))
    for (k, level, linkage, _il) in rows:
        assert level >= k
        assert linkage <= 1.0 / k + 0.05
