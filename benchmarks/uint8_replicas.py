"""Frozen uint8 hot paths, preserved verbatim for honest reference timing.

The kernel tier (``repro.kernels``) replaced these code paths in the live
library with word-level (uint64) implementations.  The benchmark gates in
``baselines.MIN_SPEEDUPS`` promise a minimum speedup *versus the uint8
implementations they replaced*, so those implementations are kept here,
byte for byte in behaviour, for the ``ref_uint8_*`` kernels in
``runner.py``:

``Uint8BatchPIR``
    The pre-kernel-tier two-server batched retrieval: boolean masks from
    ``rng.random((B, n)) < 0.5``, per-server GF(2) answers via
    ``np.unpackbits`` + float GEMM + parity + ``np.packbits``.

``Uint8MaskLog`` / ``uint8_overlap_review``
    The pre-kernel-tier packed audit state and OverlapControl scan:
    ``np.packbits`` uint8 rows, table/``bitwise_count`` popcounts,
    512-row chunks.

These classes exist *only* to be timed — the library never imports them —
and they intentionally do not track telemetry, traffic, or query views,
which makes the measured ratios conservative (the live paths carry that
bookkeeping and still must clear the gates).
"""

from __future__ import annotations

import numpy as np


class Uint8BatchPIR:
    """Two-server XOR PIR batched retrieval, uint8/float-GEMM pipeline."""

    def __init__(self, db: np.ndarray):
        self._db = np.ascontiguousarray(db, dtype=np.uint8)
        self.n = int(self._db.shape[0])
        self.block_size = int(self._db.shape[1])
        # One bit-unpacked replica per server, exactly as the seed's
        # _Server cached it (built eagerly here so timing excludes it,
        # matching the warmed live kernel).
        dtype = np.float32 if self.n < 2**24 else np.float64
        self._bits = np.unpackbits(self._db, axis=1).astype(dtype)

    def _answer_batch(self, masks: np.ndarray) -> np.ndarray:
        counts = masks.astype(self._bits.dtype) @ self._bits
        bits = (counts.astype(np.int64) & np.int64(1)).astype(np.uint8)
        return np.packbits(bits, axis=1)

    def retrieve_batch(self, indices, rng: np.random.Generator) -> list:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        masks1 = rng.random((idx.size, self.n)) < 0.5
        masks2 = masks1.copy()
        rows = np.arange(idx.size)
        masks2[rows, idx] = ~masks2[rows, idx]
        a1 = self._answer_batch(masks1)
        a2 = self._answer_batch(masks2)
        return [row.tobytes() for row in np.bitwise_xor(a1, a2)]


if hasattr(np, "bitwise_count"):
    def _popcount_rows(packed: np.ndarray) -> np.ndarray:
        return np.bitwise_count(packed).sum(axis=-1, dtype=np.int64)
else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1
    ).sum(axis=1).astype(np.uint8)

    def _popcount_rows(packed: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[packed].sum(axis=-1, dtype=np.int64)


class Uint8MaskLog:
    """The pre-kernel-tier PackedMaskLog: np.packbits uint8 rows."""

    def __init__(self, n_records: int, initial_capacity: int = 64):
        self.n_records = n_records
        self.n_bytes = (n_records + 7) // 8
        self._rows = np.zeros((max(1, initial_capacity), self.n_bytes),
                              dtype=np.uint8)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def pack(self, mask: np.ndarray) -> np.ndarray:
        return np.packbits(np.asarray(mask, dtype=bool))

    def append(self, mask: np.ndarray) -> None:
        if self._size == self._rows.shape[0]:
            self._rows = np.vstack([self._rows, np.zeros_like(self._rows)])
        self._rows[self._size] = self.pack(mask)
        self._size += 1

    def overlaps(self, packed_candidate: np.ndarray,
                 start: int = 0, stop: int | None = None) -> np.ndarray:
        block = self._rows[start: self._size if stop is None else stop]
        return _popcount_rows(block & packed_candidate)


_UINT8_CHUNK = 512


def uint8_overlap_review(mask: np.ndarray, log: Uint8MaskLog,
                         max_overlap: int) -> str | None:
    """The pre-kernel-tier OverlapControl._review_packed, verbatim."""
    if int(np.count_nonzero(mask)) <= max_overlap:
        return None
    packed = log.pack(mask)
    for start in range(0, len(log), _UINT8_CHUNK):
        stop = min(start + _UINT8_CHUNK, len(log))
        overlaps = log.overlaps(packed, start, stop)
        hits = overlaps > max_overlap
        if hits.any():
            overlap = int(overlaps[int(np.argmax(hits))])
            return (
                f"query set overlaps a previous one in {overlap} "
                f"records (> {max_overlap})"
            )
    return None
