"""Frozen replicas of the seed's query-auditing policies.

These classes preserve, line for line, the pre-optimization implementations
of :class:`repro.qdb.OverlapControl` (per-entry Python loop over full
boolean masks) and :class:`repro.qdb.SumAuditPolicy` (full re-QR of the
stacked answered-query matrix on every review *and* transform).

They exist for two reasons:

* the benchmark harness times them alongside the packed/incremental
  policies so the recorded ``qdb_*_vs_seed`` speedups stay honest on any
  machine, and
* the equivalence property tests (``tests/test_qdb_perf_equivalence.py``)
  use them as the decision oracle: the optimized policies must produce
  answer/refusal sequences identical to these replicas on randomized
  workloads.

Do not "fix" or vectorize anything here — the whole point is that this
file stays frozen at the seed behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.qdb.engine import ProtectionPolicy
from repro.qdb.query import Aggregate


class SeedSumAuditPolicy(ProtectionPolicy):
    """Seed Chin–Ozsoyoglu audit: full QR re-factorization per query."""

    _LINEAR = (Aggregate.SUM, Aggregate.COUNT, Aggregate.AVG,
               Aggregate.VARIANCE, Aggregate.STDDEV)

    def __init__(self, tolerance: float = 1e-8):
        self.tolerance = tolerance
        self.name = "sum-audit"
        self._basis: np.ndarray | None = None  # orthonormal rows

    def _would_disclose(self, candidate: np.ndarray) -> bool:
        if self._basis is not None:
            stacked = np.vstack(
                [self._basis, candidate[None, :].astype(np.float64)]
            )
        else:
            stacked = candidate[None, :].astype(np.float64)
        # Orthonormal basis of the prospective row space.
        q, r = np.linalg.qr(stacked.T, mode="reduced")
        keep = np.abs(np.diag(r)) > self.tolerance
        basis = q[:, keep].T
        if basis.size == 0:
            return False
        # e_i lies in the row space iff its projection has norm 1.
        proj_norms = (basis ** 2).sum(axis=0)
        return bool(np.any(proj_norms >= 1.0 - self.tolerance))

    def review(self, query, mask, data, history):
        if query.aggregate not in self._LINEAR:
            return None
        candidate = mask.astype(np.float64)
        if self._would_disclose(candidate):
            return "answer would make an individual record deducible"
        return None

    def transform(self, query, answer, mask, data, rng):
        if answer.ok and query.aggregate in self._LINEAR:
            candidate = mask.astype(np.float64)[None, :]
            stacked = (
                np.vstack([self._basis, candidate])
                if self._basis is not None
                else candidate
            )
            q, r = np.linalg.qr(stacked.T, mode="reduced")
            keep = np.abs(np.diag(r)) > self.tolerance
            self._basis = q[:, keep].T
        return answer


class SeedOverlapControl(ProtectionPolicy):
    """Seed Dobkin–Jones–Lipton control: Python loop over the history."""

    def __init__(self, max_overlap: int):
        if max_overlap < 0:
            raise ValueError("max_overlap must be >= 0")
        self.max_overlap = max_overlap
        self.name = f"overlap-control(r={max_overlap})"

    def review(self, query, mask, data, history):
        for entry in history:
            if not entry.answered:
                continue
            overlap = int(np.sum(mask & entry.mask))
            if overlap > self.max_overlap:
                return (
                    f"query set overlaps a previous one in {overlap} "
                    f"records (> {self.max_overlap})"
                )
        return None
