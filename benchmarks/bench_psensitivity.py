"""A5 — footnote 3: k-anonymity alone vs p-sensitive k-anonymity.

The paper (footnote 3): "If records sharing a combination of key
attributes in a k-anonymous dataset also share the values for one or more
confidential attributes, then k-anonymity does not guarantee respondent
privacy" — p-sensitive k-anonymity [24] is required.  This bench counts
homogeneity-attack victims in plain vs p-sensitive microaggregation, and
the information-loss price of the stronger property.
"""

from repro.attacks import homogeneity_attack
from repro.data import patients
from repro.sdc import (
    Microaggregation,
    PSensitiveMicroaggregation,
    anonymity_level,
    assess_utility,
    sensitivity_level,
)

QI = ["height", "weight", "age"]


def test_a5_psensitivity_vs_homogeneity(benchmark):
    pop = patients(400, seed=29)

    def run():
        rows = []
        for name, method in (
            ("k=5 (plain)", Microaggregation(5)),
            ("k=5, p=2", PSensitiveMicroaggregation(5, 2, confidential=["aids"])),
        ):
            release = method.mask(pop)
            rows.append((
                name,
                anonymity_level(release, QI),
                sensitivity_level(release, ["aids"], QI),
                homogeneity_attack(release, "aids", QI).victims,
                assess_utility(pop, release, QI).il1s,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A5 [24] (footnote 3): homogeneity victims under k vs (k, p)")
    print(f"    {'release':14s} {'k-anon':>6s} {'p':>3s} "
          f"{'victims':>8s} {'IL1s':>6s}")
    for name, k, p, victims, il in rows:
        print(f"    {name:14s} {k:>6d} {p:>3d} {victims:>8d} {il:>6.3f}")

    plain, sensitive = rows
    # Shape: plain k-anonymity leaves homogeneity victims; p-sensitivity
    # eliminates them at a bounded utility cost.
    assert plain[3] > 0
    assert sensitive[3] == 0
    assert sensitive[2] >= 2
    assert sensitive[4] < 3 * max(plain[4], 0.05)
