"""A9 — tabular SDC: why complementary suppression is not optional.

A frequency table with margins is published after primary suppression of
small cells; the margin-reconstruction attack recovers *every* suppressed
cell.  Complementary suppression (driven by the same attack) closes the
hole.  The MSU sweep shows how masking collapses fine-grained
special-uniques risk.
"""

from repro.attacks import minimal_sample_uniques
from repro.data import census, patients
from repro.qdb import (
    FrequencyTable,
    margin_reconstruction_attack,
    protect_table,
)
from repro.sdc import Microaggregation


def test_a9_margin_attack_and_complementary_suppression(benchmark):
    pop = census(300, seed=6)

    def run():
        naive = FrequencyTable.from_microdata(pop, "education", "disease")
        primary = naive.primary_suppress(3)
        recovered = margin_reconstruction_attack(naive)
        protected = protect_table(pop, "education", "disease", 3)
        residual = margin_reconstruction_attack(protected)
        return primary, recovered, protected, residual

    primary, recovered, protected, residual = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print("A9: frequency-table suppression (education x disease, t=3)")
    print(f"    primary suppressions            : {len(primary)}")
    print(f"    recovered from margins          : {len(recovered)} "
          f"({len(recovered) / max(len(primary), 1):.0%})")
    print(f"    total after complementary       : {len(protected.suppressed)}")
    print(f"    recoverable after complementary : {len(residual)}")
    print()
    print(protected.format())
    assert len(recovered) == len(primary)  # primary alone fully breakable
    assert residual == {}


def test_a9_msu_risk_before_and_after_masking(benchmark):
    pop = patients(200, seed=1)

    def run():
        raw = minimal_sample_uniques(pop, ["height", "weight", "age"], 2)
        masked = Microaggregation(5).mask(pop)
        safe = minimal_sample_uniques(masked, ["height", "weight", "age"], 2)
        return raw, safe

    raw, safe = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A9: SUDA-style minimal-unique risk, raw vs 5-anonymized")
    print(f"    raw     : {raw.risky_records.size}/200 risky, "
          f"mean score {raw.mean_score:.2f}")
    print(f"    masked  : {safe.risky_records.size}/200 risky, "
          f"mean score {safe.mean_score:.2f}")
    assert safe.mean_score < raw.mean_score
    assert safe.risky_records.size < raw.risky_records.size
