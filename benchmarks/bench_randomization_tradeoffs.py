"""A4 — randomization tradeoffs (ablation).

Two randomization mechanisms the paper cites get their privacy/accuracy
frontier measured:

* **Randomized response** (Du–Zhan [13], the paper's footnote 1): sweep
  the truth probability p; respondent-level posterior leakage rises with
  p while the owner's aggregate estimate tightens.
* **Invariant PRAM** (SDC handbook [17]): sweep retention; record-level
  flips fall while aggregate frequencies stay unbiased throughout.
"""

import numpy as np

from repro.data import census, patients
from repro.ppdm import (
    estimate_proportion,
    per_record_posterior,
    randomize_binary,
)
from repro.sdc import Pram


def test_a4_randomized_response_frontier(benchmark):
    pop = patients(4000, seed=19)
    truth = pop["aids"] == "Y"
    prior = float(truth.mean())
    ps = [0.55, 0.65, 0.75, 0.85, 0.95]

    def run():
        rows = []
        for p in ps:
            reports = randomize_binary(truth, p, np.random.default_rng(1))
            estimate = estimate_proportion(reports, p)
            posterior_yes = per_record_posterior(True, p, prior)
            rows.append((p, estimate.proportion, estimate.std_error,
                         posterior_yes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"A4 [13]: randomized response (true proportion {prior:.3f})")
    print(f"    {'p':>5s} {'estimate':>9s} {'std err':>8s} "
          f"{'P(yes|report=yes)':>18s}")
    for p, est, se, post in rows:
        print(f"    {p:>5.2f} {est:>9.3f} {se:>8.3f} {post:>18.3f}")
    # Shape: estimator stays near the truth everywhere; its error shrinks
    # with p while per-respondent leakage (posterior - prior) grows.
    errors = [se for _, _, se, _ in rows]
    posts = [post for *_, post in rows]
    assert all(a >= b for a, b in zip(errors, errors[1:]))
    assert all(a <= b for a, b in zip(posts, posts[1:]))
    assert abs(rows[-1][1] - prior) < 0.02


def test_a4_pram_frontier(benchmark):
    pop = census(2500, seed=20)
    truth = pop["disease"]
    retentions = [0.5, 0.7, 0.9]

    def run():
        rows = []
        for r in retentions:
            release = Pram(r, columns=["disease"]).mask(
                pop, np.random.default_rng(2)
            )
            flips = float(np.mean(release["disease"] != truth))
            drift = max(
                abs(float(np.mean(release["disease"] == v))
                    - float(np.mean(truth == v)))
                for v in set(truth)
            )
            rows.append((r, flips, drift))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A4 [17]: invariant PRAM (record flips vs aggregate drift)")
    print(f"    {'retention':>9s} {'flips':>7s} {'max freq drift':>15s}")
    for r, flips, drift in rows:
        print(f"    {r:>9.2f} {flips:>7.3f} {drift:>15.4f}")
    flips = [f for _, f, _ in rows]
    # Shape: flips fall with retention; aggregate drift stays small
    # everywhere (the invariance property).
    assert all(a >= b for a, b in zip(flips, flips[1:]))
    assert all(drift < 0.04 for *_, drift in rows)
