"""A6 — a full scoreboard of every masking method in the library.

The framework's practical payoff: any masking configuration can be put on
the paper's three-dimensional scale.  Scores every implemented method on
the same population and checks the structural invariants (microaggregation
tops respondent privacy, synthetic/condensation top owner privacy, nobody
gets user privacy without PIR).
"""

from repro.core import PrivacyDimension, masking_scoreboard
from repro.data import patients
from repro.sdc import (
    Condensation,
    CorrelatedNoise,
    IdentityMasking,
    Microaggregation,
    MondrianKAnonymizer,
    PSensitiveMicroaggregation,
    RankSwap,
    Rounding,
    SyntheticRelease,
    TopBottomCoding,
    UncorrelatedNoise,
)

R, O, U = (
    PrivacyDimension.RESPONDENT,
    PrivacyDimension.OWNER,
    PrivacyDimension.USER,
)


def _methods():
    return [
        IdentityMasking(),
        Microaggregation(5),
        PSensitiveMicroaggregation(5, 2, confidential=["aids"]),
        MondrianKAnonymizer(5),
        Condensation(14),
        SyntheticRelease(),
        UncorrelatedNoise(0.5),
        CorrelatedNoise(0.3),
        RankSwap(15),
        TopBottomCoding(0.05),
        Rounding(0.5),
    ]


def test_a6_masking_scoreboard(benchmark):
    pop = patients(400, seed=0).drop(["patient_id"])

    def run():
        return masking_scoreboard(_methods(), pop, with_pir=False, seed=0)

    board = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A6: every masking method on the three-dimensional scale")
    for assessment in board:
        print("    " + assessment.summary())

    by_name = {a.method_name: a for a in board}
    identity = by_name["identity"]
    # Structural invariants of the framework:
    assert identity.scores[R] < 0.05 and identity.scores[O] < 0.05
    assert all(a.scores[U] == 0.0 for a in board)  # no PIR, no user privacy
    # k-anonymity-style methods dominate the respondent column...
    k_methods = [
        by_name["microaggregation(k=5)"],
        by_name["mondrian(k=5)"],
        by_name["p-sensitive-microaggregation(k=5,p=2)"],
    ]
    weak = [by_name["top-bottom-coding(tail=0.05)"], by_name["rounding(base=0.5sd)"]]
    assert min(m.scores[R] for m in k_methods) > max(w.scores[R] for w in weak)
    # ...while distribution-replacement methods dominate the owner column.
    assert by_name["synthetic-copula"].scores[O] >= by_name["microaggregation(k=5)"].scores[O]
    assert by_name["condensation(k=14)"].scores[O] > by_name["identity"].scores[O]


def test_a6_pir_composition_lifts_user_only(benchmark):
    pop = patients(300, seed=1).drop(["patient_id"])

    def run():
        plain = masking_scoreboard([Microaggregation(5)], pop, with_pir=False)
        pired = masking_scoreboard([Microaggregation(5)], pop, with_pir=True)
        return plain[0], pired[0]

    plain, pired = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A6: PIR composition (microaggregation k=5)")
    print("    " + plain.summary())
    print("    " + pired.summary())
    assert plain.scores[U] == 0.0
    assert pired.scores[U] > 0.9
    assert abs(plain.scores[R] - pired.scores[R]) < 1e-9
    assert abs(plain.scores[O] - pired.scores[O]) < 1e-9