"""Committed baselines for the hot-path benchmark harness.

Values are *normalized* wall times: kernel median seconds divided by the
:func:`benchmarks.runner.calibrate` loop's seconds on the same machine,
so they transfer (roughly) across hardware.  A kernel regresses when its
normalized time exceeds ``baseline * TOLERANCE``.

To refresh after an intentional perf change::

    python -m benchmarks.runner --output BENCH_hotpaths.json

then copy the ``normalized`` numbers printed (or from the JSON) into
``BASELINES`` below and commit both files — this is the trajectory every
future perf PR appends to.
"""

# Normalized medians measured for the vectorized kernels introduced with
# this harness (see BENCH_hotpaths.json for the raw record).
BASELINES: dict[str, float] = {
    "pir_single_retrieve_n1024": 0.35,
    "pir_single_retrieve_n4096": 1.25,
    "pir_batch64_retrieve_n4096": 15.0,
    "pir_square_retrieve_n4096": 0.15,
    "pir_multiserver3_retrieve_n1024": 0.55,
    "mdav_n1000_k5": 30.0,
    "mdav_n2000_k10": 50.0,
    "linkage_n600": 12.0,
}

# Allowed slowdown factor before --check fails; generous because the
# calibration loop cannot fully cancel scheduler noise on busy machines.
TOLERANCE = 2.0

# The vectorized single-retrieve kernel must beat a faithful replica of
# the seed's per-byte Python XOR loop by at least this factor.
MIN_SPEEDUP_VS_SEED = 10.0
