"""Committed baselines for the hot-path benchmark harness.

Values are *normalized* wall times: kernel median seconds divided by the
:func:`benchmarks.runner.calibrate` loop's seconds on the same machine,
so they transfer (roughly) across hardware.  A kernel regresses when its
normalized time exceeds ``baseline * TOLERANCE``.

To refresh after an intentional perf change::

    python -m benchmarks.runner --output BENCH_hotpaths.json

then copy the ``normalized`` numbers printed (or from the JSON) into
``BASELINES`` below and commit both files — this is the trajectory every
future perf PR appends to.
"""

# Normalized medians measured for the vectorized kernels introduced with
# this harness (see BENCH_hotpaths.json for the raw record).  The qdb_*
# kernels cover the query-engine throughput layer: packed-bitset overlap
# auditing and the incremental-QR sum audit at session depth H=2000 over
# n=5000 records, and the batched workload API end to end.  The
# pir_batch64_retrieve_n65536 and memmap entries time the word-level
# kernel tier (ISSUE 6) at sizes where the uint8 pipeline dominated.
BASELINES: dict[str, float] = {
    "pir_single_retrieve_n1024": 0.35,
    "pir_single_retrieve_n4096": 1.25,
    "pir_batch64_retrieve_n4096": 6.0,
    "pir_batch64_retrieve_n65536": 60.0,
    "pir_memmap_batch8_retrieve_n262144": 55.0,
    # The word-tier query path adds a few fixed microseconds to this
    # sub-0.1ms kernel (packed sampling + one unpack per retrieval) in
    # exchange for the multi-x batched gains; re-measured with ISSUE 6.
    "pir_square_retrieve_n4096": 0.22,
    "pir_multiserver3_retrieve_n1024": 0.55,
    "pir_faulty_batch64_retrieve_n4096": 7.0,
    "pir_faulty_retrieve_n1024": 2.3,
    "mdav_n1000_k5": 30.0,
    "mdav_n2000_k10": 50.0,
    "linkage_n600": 12.0,
    "qdb_overlap_h2000": 2.0,
    # The ISSUE 7 plan-path kernels: the packed history on a memmap word
    # store under a 1 MiB budget, the three-policy fused audit through
    # ``ask`` (n=20000 rows), and the warm-plan-cache batched workload.
    "qdb_memmap_history_overlap": 3.0,
    "qdb_fused_audit_h2000": 9.0,
    "qdb_plan_cache_batch": 24.0,
    "qdb_sum_audit": 24.0,
    "qdb_ask_batch": 100.0,
    "telemetry_overhead_qdb_ask_batch": 110.0,
    # ask_batch with the resident service attached *and* a live SSE
    # consumer draining the polled event ring: the observatory's
    # per-span processing dominates (see ref_observatory_attached_
    # ask_batch); the service layer itself adds <10% on top, gated by
    # MAX_OVERHEADS below rather than by this absolute number.
    "observatory_sse_fanout": 140.0,
    # The sharded serving runtime (ISSUE 9): serving_qps pipelines 256
    # mixed ops (qdb + PIR scatters) through 4 resident shard worker
    # pools per rep; serving_p99 serializes 64 blocking round trips.
    # Cross-thread future handoff dominates both — the engine work is
    # the same qdb_ask_batch substrate.
    "serving_qps": 120.0,
    "serving_p99": 25.0,
    # The request-tracing layer (ISSUE 10): the serving_qps burst inside
    # a live telemetry session with tracing sampled out (the reference —
    # engine/serving span cost ISSUE 5 already charges), with every
    # request materialising full trace context (id mint, monotonic
    # marks across threads, the serving.request span, seven stage
    # histogram observations), and under the ~100 Hz sampling profiler.
    # The absolute numbers absorb VM noise via TOLERANCE; the real
    # gates are the MAX_OVERHEADS ratios below.
    "ref_telemetry_serving_qps": 130.0,
    "serving_traced_qps": 140.0,
    "serving_profiled_qps": 125.0,
}

# Normalized ceiling for the serving runtime's serialized-request p99
# (results["serving"]["p99_normalized"]; per-op wall time over every
# rep, 99th percentile, divided by the calibration loop seconds).
# Checked against MAX_SERVING_P99_NORMALIZED * TOLERANCE — the tail is
# the first thing queue mismanagement (lost wakeups, batch starvation,
# lock convoys on the decision path) would inflate.
MAX_SERVING_P99_NORMALIZED = 1.0

# The kernel backend the absolute BASELINES above were measured with
# (see repro.kernels.backends).  --check fails loudly when a run's
# recorded backend differs: a pure-numpy fallback timing compared
# against compiled-C baselines would either mask real regressions or
# manufacture false ones.
BASELINE_BACKEND = "cext"

# Allowed slowdown factor before --check fails; generous because the
# calibration loop cannot fully cancel scheduler noise on busy machines.
TOLERANCE = 2.0

# Minimum recorded speedups, keyed by the speedup record name in
# BENCH_hotpaths.json: ``*_vs_seed`` entries compare against the seed's
# pure-Python replicas (benchmarks/seed_replicas.py, SPEEDUP_PAIRS in
# runner.py), ``*_vs_uint8`` entries compare the word-level kernel tier
# against the frozen uint8 pipelines it replaced
# (benchmarks/uint8_replicas.py, UINT8_PAIRS in runner.py), and the
# ``*_vs_unfused`` / ``*_vs_cold`` entries gate the query-plan optimizer
# (PLAN_PAIRS in runner.py): the fused multi-policy audit against the
# legacy per-policy pipeline, and the warm plan cache against cold
# per-query compilation.
MIN_SPEEDUPS: dict[str, float] = {
    "pir_single_retrieve_n4096_vs_seed": 10.0,
    "qdb_overlap_h2000_vs_seed": 10.0,
    "qdb_sum_audit_vs_seed": 10.0,
    "pir_batch64_retrieve_n65536_vs_uint8": 4.0,
    "qdb_overlap_h2000_vs_uint8": 2.0,
    "qdb_fused_audit_h2000_vs_unfused": 2.0,
    "qdb_plan_cache_batch_vs_cold": 1.5,
}

# Backwards-compatible alias for the original single-pair constant.
MIN_SPEEDUP_VS_SEED = MIN_SPEEDUPS["pir_single_retrieve_n4096_vs_seed"]

# Wrapping layers must stay within these factors of their bare kernels
# (pairs are OVERHEAD_PAIRS in runner.py): resilience must not tax the
# healthy hot path, and a live telemetry session — spans, attribute
# assembly, histograms, the observatory feed — must not tax the query
# engine by more than 10% (the ISSUE 5 enabled-overhead gate; the
# *disabled* cost is held at zero by the golden-fingerprint tests).
# The observatory_sse_fanout pair (ISSUE 8) holds the resident service
# layer — session timelines, event-bus fan-out, a live HTTP/SSE
# subscriber — to the same 10% budget over the observatory-attached
# reference kernel: serving the observatory must cost the monitored
# engine almost nothing beyond the (already live) monitoring itself.
MAX_OVERHEADS: dict[str, float] = {
    "pir_faulty_batch64_retrieve_n4096": 1.10,
    "telemetry_overhead_qdb_ask_batch": 1.10,
    "observatory_sse_fanout": 1.10,
    # ISSUE 10: full per-request trace context (id minting, cross-thread
    # stage marks, the serving.request span, per-shard stage histograms
    # with exemplars) must add <= 10% over the traced-out telemetry
    # reference, and the always-on sampling profiler <= 5% over bare
    # serving.  Both pairs are measured on process CPU time
    # (CPU_CLOCK_OVERHEADS in runner.py): the workload runs five
    # threads, and on a one-core CI box a wall ratio of that measures
    # scheduler interleaving, not the layer under test.
    "serving_traced_qps": 1.10,
    "serving_profiled_qps": 1.05,
}
