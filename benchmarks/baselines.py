"""Committed baselines for the hot-path benchmark harness.

Values are *normalized* wall times: kernel median seconds divided by the
:func:`benchmarks.runner.calibrate` loop's seconds on the same machine,
so they transfer (roughly) across hardware.  A kernel regresses when its
normalized time exceeds ``baseline * TOLERANCE``.

To refresh after an intentional perf change::

    python -m benchmarks.runner --output BENCH_hotpaths.json

then copy the ``normalized`` numbers printed (or from the JSON) into
``BASELINES`` below and commit both files — this is the trajectory every
future perf PR appends to.
"""

# Normalized medians measured for the vectorized kernels introduced with
# this harness (see BENCH_hotpaths.json for the raw record).  The qdb_*
# kernels cover the query-engine throughput layer: packed-bitset overlap
# auditing and the incremental-QR sum audit at session depth H=2000 over
# n=5000 records, and the batched workload API end to end.
BASELINES: dict[str, float] = {
    "pir_single_retrieve_n1024": 0.35,
    "pir_single_retrieve_n4096": 1.25,
    "pir_batch64_retrieve_n4096": 15.0,
    "pir_square_retrieve_n4096": 0.15,
    "pir_multiserver3_retrieve_n1024": 0.55,
    "pir_faulty_batch64_retrieve_n4096": 16.0,
    "pir_faulty_retrieve_n1024": 2.3,
    "mdav_n1000_k5": 30.0,
    "mdav_n2000_k10": 50.0,
    "linkage_n600": 12.0,
    "qdb_overlap": 11.0,
    "qdb_sum_audit": 24.0,
    "qdb_ask_batch": 100.0,
    "telemetry_overhead_qdb_ask_batch": 110.0,
}

# Allowed slowdown factor before --check fails; generous because the
# calibration loop cannot fully cancel scheduler noise on busy machines.
TOLERANCE = 2.0

# Each optimized kernel must beat the timed replica of the seed
# implementation (benchmarks/seed_replicas.py and the per-byte XOR loop
# in runner.py) by at least this factor; pairs are SPEEDUP_PAIRS in
# runner.py.
MIN_SPEEDUPS: dict[str, float] = {
    "pir_single_retrieve_n4096": 10.0,
    "qdb_overlap": 10.0,
    "qdb_sum_audit": 10.0,
}

# Backwards-compatible alias for the original single-pair constant.
MIN_SPEEDUP_VS_SEED = MIN_SPEEDUPS["pir_single_retrieve_n4096"]

# Wrapping layers must stay within these factors of their bare kernels
# (pairs are OVERHEAD_PAIRS in runner.py): resilience must not tax the
# healthy hot path, and a live telemetry session — spans, attribute
# assembly, histograms, the observatory feed — must not tax the query
# engine by more than 10% (the ISSUE 5 enabled-overhead gate; the
# *disabled* cost is held at zero by the golden-fingerprint tests).
MAX_OVERHEADS: dict[str, float] = {
    "pir_faulty_batch64_retrieve_n4096": 1.10,
    "telemetry_overhead_qdb_ask_batch": 1.10,
}
