"""S2b — respondent + owner privacy via masking, with utility intact.

Reproduces the Section 2 'respondent privacy and owner privacy' bundle:

* Agrawal–Srikant randomization: decision trees trained on data
  reconstructed from the noisy release stay close to plaintext accuracy
  (the [5] experiment);
* condensation: the covariance structure survives ([1]);
* microaggregation: the release is k-anonymous ([12]).
"""

import numpy as np

from repro.data import patients
from repro.mining import (
    DecisionTree,
    accuracy,
    fit_from_distributions,
    train_test_split_indices,
)
from repro.ppdm import AgrawalSrikantRandomizer, reconstruct_univariate
from repro.sdc import (
    Condensation,
    Microaggregation,
    anonymity_level,
    covariance_discrepancy,
)

FEATURE = "weight"


def _tree_accuracies():
    pop = patients(700, seed=21)
    y = np.asarray(
        pop["blood_pressure"] > np.median(pop["blood_pressure"]), dtype=object
    )
    x = pop.matrix([FEATURE])
    randomizer = AgrawalSrikantRandomizer(0.5, columns=[FEATURE])
    release = randomizer.mask(pop, np.random.default_rng(2))
    w = release.matrix([FEATURE])
    tr, te = train_test_split_indices(pop.n_rows, 0.3, 0)

    acc_plain = accuracy(
        y[te], DecisionTree(max_depth=4).fit(x[tr], y[tr]).predict(x[te])
    )
    acc_noisy = accuracy(
        y[te], DecisionTree(max_depth=4).fit(w[tr], y[tr]).predict(x[te])
    )
    # ByClass reconstruction: one distribution per class label.
    model = randomizer.noise_models[FEATURE]
    per_class = {}
    for label in (True, False):
        subset = w[tr][y[tr] == label, 0]
        per_class[label] = (
            reconstruct_univariate(subset, model, bins=30), subset.size
        )
    tree = fit_from_distributions(per_class, samples_per_class=500, rng=3,
                                  max_depth=4)
    acc_reconstructed = accuracy(y[te], tree.predict(x[te]))
    return acc_plain, acc_noisy, acc_reconstructed


def test_s2b_randomization_preserves_learning(benchmark):
    acc_plain, acc_noisy, acc_rec = benchmark.pedantic(
        _tree_accuracies, rounds=1, iterations=1
    )
    print()
    print("S2b [5]: decision-tree accuracy (weight -> high blood pressure)")
    print(f"    plaintext training            : {acc_plain:.3f}")
    print(f"    trained on raw noisy release  : {acc_noisy:.3f}")
    print(f"    reconstruction-based (ByClass): {acc_rec:.3f}")
    # Shape: reconstruction recovers most of the plaintext accuracy.
    assert acc_rec > 0.55
    assert acc_rec >= acc_plain - 0.15


def test_s2b_condensation_preserves_covariance(benchmark):
    pop = patients(600, seed=22)

    def run():
        release = Condensation(10).mask(pop, np.random.default_rng(3))
        return covariance_discrepancy(
            pop, release, ["height", "weight", "age"]
        )

    discrepancy = benchmark(run)
    print()
    print("S2b [1]: condensation covariance discrepancy "
          f"(relative Frobenius): {discrepancy:.4f}")
    assert discrepancy < 0.1


def test_s2b_microaggregation_guarantees_k_anonymity(benchmark):
    pop = patients(600, seed=23)

    def run():
        return [
            anonymity_level(
                Microaggregation(k).mask(pop), ["height", "weight", "age"]
            )
            for k in (3, 5, 10)
        ]

    levels = benchmark(run)
    print()
    print("S2b [12]: microaggregation k -> achieved anonymity level")
    for k, level in zip((3, 5, 10), levels):
        print(f"    k={k:<3d} -> {level}")
    assert all(level >= k for k, level in zip((3, 5, 10), levels))
