"""Benchmark-regression harness for the vectorized hot-path kernels.

Times the named kernels (PIR single/batch retrieval at several database
sizes, MDAV microaggregation at several n x k, probabilistic linkage,
and the query-engine auditing hot paths at session depth H=2000 over
n=5000 records), normalizes wall times against a machine calibration
loop, writes the results to ``BENCH_hotpaths.json``, and — with
``--check`` — compares the normalized times against the committed
baselines in :mod:`benchmarks.baselines`, exiting nonzero on regression.

Usage::

    python -m benchmarks.runner                      # time + write JSON
    python -m benchmarks.runner --check              # fail on regression
    python -m benchmarks.runner --list               # print kernel names
    python -m benchmarks.runner --trials 1 --no-compare   # CI smoke

Replicas of the seed implementations (the per-byte XOR PIR loop, the
per-entry overlap loop, the full-QR audit — see
:mod:`benchmarks.seed_replicas`) are timed alongside the optimized
kernels so every recorded ``*_vs_seed`` speedup stays honest on any
machine, and replicas of the pre-kernel-tier uint8 pipelines
(:mod:`benchmarks.uint8_replicas`) back the ``*_vs_uint8`` speedups
that gate the word-level kernel tier.  The JSON records which kernel
backend produced the numbers (``results["backend"]``); ``--check``
refuses to compare against baselines measured on a different backend.
"""

from __future__ import annotations

import argparse
import atexit
import gc
import json
import shutil
import statistics
import sys
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.attacks import ProbabilisticLinkageAttack
from repro.data import patients
from repro.faults import Fault, FaultPlan, ResilientXorPIR
from repro.kernels import MemmapBlockStore, backend_info
from repro.pir import MultiServerXorPIR, SquareSchemePIR, TwoServerXorPIR
from repro.qdb import (
    Aggregate,
    Answer,
    Comparison,
    LogEntry,
    OverlapControl,
    Predicate,
    Query,
    QueryHistory,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
    TruePredicate,
)
from repro.sdc.microaggregation import mdav_groups
from repro.telemetry import process_registry

from .baselines import (
    BASELINE_BACKEND,
    BASELINES,
    MAX_OVERHEADS,
    MAX_SERVING_P99_NORMALIZED,
    MIN_SPEEDUPS,
    TOLERANCE,
)
from .seed_replicas import SeedOverlapControl, SeedSumAuditPolicy
from .uint8_replicas import Uint8BatchPIR, Uint8MaskLog, uint8_overlap_review

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

# (optimized kernel, timed seed replica) pairs; the recorded speedup
# ``<kernel>_vs_seed`` must stay above its MIN_SPEEDUPS entry under
# --check.
SPEEDUP_PAIRS = [
    ("pir_single_retrieve_n4096", "seed_pir_single_retrieve_n4096"),
    ("qdb_overlap_h2000", "seed_qdb_overlap"),
    ("qdb_sum_audit", "seed_qdb_sum_audit"),
]

# (word-kernel workload, frozen uint8 replica) pairs; the recorded
# speedup ``<kernel>_vs_uint8`` must stay above its MIN_SPEEDUPS entry
# under --check — the gates on the kernel tier itself.
UINT8_PAIRS = [
    ("pir_batch64_retrieve_n65536", "ref_uint8_pir_batch64_retrieve_n65536"),
    ("qdb_overlap_h2000", "ref_uint8_qdb_overlap_h2000"),
]

# (plan-path kernel, reference kernel, suffix) triples; the recorded
# speedup ``<kernel>_vs_<suffix>`` must stay above its MIN_SPEEDUPS
# entry under --check — the gates on the query-plan optimizer (fused
# audit checks, plan cache).
PLAN_PAIRS = [
    ("qdb_fused_audit_h2000", "ref_unfused_qdb_audit_h2000", "unfused"),
    ("qdb_plan_cache_batch", "ref_cold_plan_ask_batch", "cold"),
]

# (wrapped kernel, bare kernel) pairs; the recorded ratio for each pair
# must stay below MAX_OVERHEADS[wrapped] under --check — the gates that
# keep the fault-tolerance layer out of the fault-free hot path, the
# telemetry/observatory layer out of the disabled hot path's budget, and
# the resident observatory service (session timelines + SSE fan-out with
# a live HTTP subscriber) out of the enabled hot path's budget.
OVERHEAD_PAIRS = [
    ("pir_faulty_batch64_retrieve_n4096", "pir_batch64_retrieve_n4096"),
    ("telemetry_overhead_qdb_ask_batch", "qdb_ask_batch"),
    ("observatory_sse_fanout", "ref_observatory_attached_ask_batch"),
    ("serving_traced_qps", "ref_telemetry_serving_qps"),
    ("serving_profiled_qps", "serving_qps"),
]

# Overhead pairs whose workload runs five threads (router plus four
# shard workers).  On the cores CI actually grants — often exactly one —
# a wall-clock ratio of such a workload measures the scheduler's
# interleaving luck, not the layer under test: adjacent-pair wall ratios
# observed here spread 0.9x-1.9x and their medians drift 1.13-1.18
# across runs while the process-CPU ratio sits stably near 1.06.  These
# pairs are therefore gated on process CPU time, which sums every
# thread's actual work — exactly the quantity the traced/profiled layer
# adds — and is immune to preemption by other tenants.
CPU_CLOCK_OVERHEADS = {"serving_traced_qps", "serving_profiled_qps"}


def _pir_blocks(n: int, block_size: int = 64) -> list[bytes]:
    return [bytes([i % 256]) * block_size for i in range(n)]


def _seed_style_retrieve(blocks: list[bytes], index: int, seed: int) -> bytes:
    """Faithful replica of the seed's per-byte two-server retrieval loop."""
    rng = np.random.default_rng(seed)
    n = len(blocks)
    subset = rng.random(n) < 0.5
    s1 = set(np.flatnonzero(subset).tolist())
    s2 = set(s1)
    s2 ^= {index}
    size = len(blocks[0])

    def answer(indices):
        acc = bytearray(size)
        for i in indices:
            block = blocks[i]
            for j in range(size):
                acc[j] ^= block[j]
        return bytes(acc)

    a1 = answer(sorted(s1))
    a2 = answer(sorted(s2))
    return bytes(x ^ y for x, y in zip(a1, a2))


@dataclass
class Kernel:
    """One named hot-path workload: setup once, time ``reps`` runs."""

    name: str
    setup: Callable[[], Callable[[], object]]
    reps: int = 1
    # Reference kernels document a comparison point (the seed's pure-Python
    # loop); they are never compared against baselines.
    reference_only: bool = False


def _pir_single(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = TwoServerXorPIR(_pir_blocks(n))
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _pir_batch(n: int, batch: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = TwoServerXorPIR(_pir_blocks(n))
        indices = list(range(0, n, max(1, n // batch)))[:batch]
        pir.retrieve_batch(indices[:2], 0)  # build the bit matrix once
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve_batch(indices, state["seed"])

        return run

    return setup


def _pir_uint8_batch(n: int, batch: int) -> Callable[[], Callable[[], object]]:
    """The frozen pre-kernel-tier batched retrieval (uint8/float GEMM)."""

    def setup():
        db = np.frombuffer(
            b"".join(_pir_blocks(n)), dtype=np.uint8
        ).reshape(n, -1)
        pir = Uint8BatchPIR(db)
        indices = list(range(0, n, max(1, n // batch)))[:batch]
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve_batch(
                indices, np.random.default_rng(state["seed"])
            )

        return run

    return setup


_MEMMAP_DIR: list[str] = []


def _memmap_dir() -> Path:
    """A per-process scratch directory for memmap stores, removed at exit."""
    if not _MEMMAP_DIR:
        path = tempfile.mkdtemp(prefix="repro-bench-memmap-")
        _MEMMAP_DIR.append(path)
        atexit.register(shutil.rmtree, path, ignore_errors=True)
    return Path(_MEMMAP_DIR[0])


def _pir_memmap_batch(
    n: int, batch: int, ram_budget: int
) -> Callable[[], Callable[[], object]]:
    """Batched retrieval over a memory-mapped store scanned under a RAM
    budget — the database-larger-than-RAM configuration, on disk once and
    answered in ``chunk_rows`` slices."""

    def setup():
        path = _memmap_dir() / f"pir-n{n}.npy"
        if not path.exists():
            blocks = np.broadcast_to(
                (np.arange(n) % 256).astype(np.uint8)[:, None], (n, 64)
            )
            MemmapBlockStore.create(path, blocks)
        store = MemmapBlockStore(path, mode="r", ram_budget=ram_budget)
        pir = TwoServerXorPIR(store)
        indices = list(range(0, n, max(1, n // batch)))[:batch]
        pir.retrieve_batch(indices[:2], 0)  # fault the pages in once
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve_batch(indices, state["seed"])

        return run

    return setup


def _pir_square(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = SquareSchemePIR(_pir_blocks(n))
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _pir_multiserver(n: int, servers: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = MultiServerXorPIR(_pir_blocks(n), n_servers=servers)
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _pir_faulty_batch(n: int, batch: int) -> Callable[[], Callable[[], object]]:
    """The resilient front-end with no faults and f=0 (one replica group).

    Same workload as ``pir_batch64_retrieve_n4096``; the measured delta
    is the pure wrapping cost (plan bookkeeping, delivery fast path,
    per-block reports) that OVERHEAD_PAIRS bounds at <10%.
    """

    def setup():
        pir = ResilientXorPIR(_pir_blocks(n), f=0, plan=FaultPlan())
        indices = list(range(0, n, max(1, n // batch)))[:batch]
        pir.retrieve_batch(indices[:2], 0)  # build the bit matrices once
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve_batch(indices, state["seed"])

        return run

    return setup


def _pir_faulty_single(n: int) -> Callable[[], Callable[[], object]]:
    """Resilient retrieval with f=1 and a byzantine replica actually lying.

    Times the full fault path: 3 replica groups, per-delivery resolution
    and majority voting that outvotes the byzantine candidate every call.
    """

    def setup():
        plan = FaultPlan([Fault("byzantine", "pir.replica:0")], seed=9)
        pir = ResilientXorPIR(_pir_blocks(n), f=1, plan=plan)
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _seed_pir_single(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        blocks = _pir_blocks(n)
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return _seed_style_retrieve(blocks, n // 2, state["seed"])

        return run

    return setup


def _mdav(n: int, k: int) -> Callable[[], Callable[[], object]]:
    def setup():
        matrix = np.random.default_rng(7).normal(size=(n, 4))
        return lambda: mdav_groups(matrix, k)

    return setup


def _linkage(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pop = patients(n, seed=3)
        attack = ProbabilisticLinkageAttack(["height", "weight", "age"])
        return lambda: attack.run(pop, pop)

    return setup


_QDB_DUMMY_QUERY = Query(Aggregate.SUM, "x", TruePredicate())


def _qdb_overlap(
    h: int, n: int, seed_impl: bool = False
) -> Callable[[], Callable[[], object]]:
    """Overlap review at session depth *h* over *n* records.

    The history holds ``h`` answered ~n/2-sized random query sets; each
    rep audits 8 probe query sets against the full history.
    ``max_overlap`` sits above every actual overlap (~n/4) but below the
    probe sizes (~n/2), so neither implementation can refuse or skip the
    scan — the timed work is the complete history pass.
    """
    max_overlap = (2 * n) // 5

    def setup():
        rng = np.random.default_rng(11)
        hist_masks = rng.random((h, n)) < 0.5
        probes = list(rng.random((8, n)) < 0.5)
        if seed_impl:
            policy = SeedOverlapControl(max_overlap)
            history: list = [
                LogEntry(_QDB_DUMMY_QUERY, m, True, 1.0) for m in hist_masks
            ]
        else:
            policy = OverlapControl(max_overlap)
            history = QueryHistory(n)
            for m in hist_masks:
                history.record(LogEntry(_QDB_DUMMY_QUERY, m, True, 1.0))

        def run():
            for probe in probes:
                reason = policy.review(_QDB_DUMMY_QUERY, probe, None, history)
                if reason is not None:  # would skew the timing
                    raise RuntimeError(f"unexpected refusal: {reason}")

        return run

    return setup


def _qdb_overlap_uint8(h: int, n: int) -> Callable[[], Callable[[], object]]:
    """The ``_qdb_overlap`` workload on the frozen uint8 audit pipeline."""
    max_overlap = (2 * n) // 5

    def setup():
        rng = np.random.default_rng(11)
        hist_masks = rng.random((h, n)) < 0.5
        probes = list(rng.random((8, n)) < 0.5)
        log = Uint8MaskLog(n)
        for m in hist_masks:
            log.append(m)

        def run():
            for probe in probes:
                reason = uint8_overlap_review(probe, log, max_overlap)
                if reason is not None:  # would skew the timing
                    raise RuntimeError(f"unexpected refusal: {reason}")

        return run

    return setup


def _qdb_sum_audit(
    h: int, n: int, n_unique: int, seed_impl: bool = False
) -> Callable[[], Callable[[], object]]:
    """Sum-audit review+transform at session depth *h* over *n* records.

    The answered session is ``h`` queries cycling over ``n_unique``
    nested threshold predicates, so the audit basis holds ``n_unique``
    orthonormal rows — exactly the state both implementations carry after
    those ``h`` answers (the basis depends only on the answered span).
    Each rep audits and re-commits 4 already-answered query sets, the
    steady-state cost of one more query at that depth.
    """

    def setup():
        rng = np.random.default_rng(13)
        col = rng.integers(0, n_unique, n)
        unique_masks = [col <= t for t in range(n_unique)]
        assert h >= len(unique_masks)
        if seed_impl:
            policy = SeedSumAuditPolicy()
            # The seed basis after the session: orthonormalize the unique
            # indicator span in one shot (state-equivalent, setup-cheap).
            stacked = np.array(unique_masks, dtype=np.float64)
            q, r = np.linalg.qr(stacked.T, mode="reduced")
            keep = np.abs(np.diag(r)) > policy.tolerance
            policy._basis = q[:, keep].T
        else:
            policy = SumAuditPolicy()
            for mask in unique_masks:
                policy.review(_QDB_DUMMY_QUERY, mask, None, [])
                policy.transform(
                    _QDB_DUMMY_QUERY, Answer(_QDB_DUMMY_QUERY, value=1.0),
                    mask, None, None,
                )
        probes = unique_masks[:4]

        def run():
            for mask in probes:
                reason = policy.review(_QDB_DUMMY_QUERY, mask, None, [])
                if reason is not None:
                    raise RuntimeError(f"unexpected refusal: {reason}")
                policy.transform(
                    _QDB_DUMMY_QUERY, Answer(_QDB_DUMMY_QUERY, value=1.0),
                    mask, None, None,
                )

        return run

    return setup


class _StoredMaskPredicate(Predicate):
    """Benchmark-only predicate: a fixed query-set mask, synthetic key.

    Lets a kernel submit predetermined query sets through the full
    ``ask`` pipeline (mask cache, plan cache, policy reviews) without
    paying per-rep predicate evaluation: the engine memoizes the mask
    under the synthetic cache key on first resolution, so every later
    ask of the same predicate sees the identical frozen array.
    """

    def __init__(self, tag: int, mask: np.ndarray):
        self._tag = tag
        self._mask = np.asarray(mask, dtype=bool)

    def mask(self, data) -> np.ndarray:
        return self._mask

    def cache_key(self) -> tuple:
        return ("bench-stored-mask", self._tag)


def _qdb_fused_audit(
    h: int, n: int, use_plans: bool = True
) -> Callable[[], Callable[[], object]]:
    """Three stacked audit policies behind ``ask`` at session depth *h*.

    The packed history holds *h* answered ~n/2 random query sets and the
    sum-audit basis is pre-committed with a base query set C, so each of
    the 8 probes (C plus one distinct extra record) passes the size
    check, passes the overlap check only after scanning the history
    (overlaps ~n/4 < max_overlap ~2n/5), and is then refused by the
    audit (e_i = probe - C becomes deducible) — refusals leave the
    packed history and the audit basis untouched, so every rep times the
    identical state.  The plan path fuses the three reviews into one
    shared pass and resumes the overlap scan from the prefix already
    cleared for the probe's cached mask; the ``use_plans=False`` replica
    is the legacy per-policy pipeline rescanning all *h* rows per probe.
    """
    max_overlap = (2 * n) // 5

    def setup():
        rng = np.random.default_rng(11)
        pop = patients(n, seed=3)
        hist_masks = rng.random((h, n)) < 0.5
        base = rng.random(n) < 0.5
        extras = np.flatnonzero(~base)[:8]
        policies = [QuerySetSizeControl(5), OverlapControl(max_overlap),
                    SumAuditPolicy()]
        db = StatisticalDatabase(pop, policies, use_plans=use_plans)
        for m in hist_masks:
            db.history.record(LogEntry(_QDB_DUMMY_QUERY, m, True, 1.0))
        audit = policies[2]
        audit.review(_QDB_DUMMY_QUERY, base, None, [])
        audit.transform(_QDB_DUMMY_QUERY, Answer(_QDB_DUMMY_QUERY, value=1.0),
                        base, None, None)
        queries = []
        for j, extra in enumerate(extras):
            probe = base.copy()
            probe[extra] = True
            queries.append(Query(Aggregate.SUM, "blood_pressure",
                                 _StoredMaskPredicate(int(j), probe)))

        def run():
            for query in queries:
                answer = db.ask(query)
                if not answer.refused or "sum-audit" not in (answer.reason or ""):
                    raise RuntimeError(f"unexpected decision: {answer}")

        return run

    return setup


def _qdb_plan_cache_batch(
    n: int, n_queries: int, n_unique: int, cached: bool = True
) -> Callable[[], Callable[[], object]]:
    """Plan-compilation cost in ``ask_batch``: warm cache vs cold compile.

    A small population and a size-control-only stack keep the per-query
    evaluation cheap, so the timed difference is dominated by what the
    plan cache saves: ``n_queries`` COUNT queries cycling ``n_unique``
    predicate shapes compile ``n_unique`` plans once when the cache is
    warm, versus compiling (and re-optimizing) every query when
    ``cached=False`` disables the planner's cache.
    """

    def setup():
        pop = patients(n, seed=3)
        columns = ("height", "weight", "age")
        predicates = []
        for i in range(n_unique):
            column = columns[i % len(columns)]
            quantile = (i % 17 + 1) / 18.0
            value = float(np.quantile(pop[column], quantile))
            predicates.append(
                Comparison(column, "<=" if i % 2 else ">", value)
            )
        queries = [
            Query(Aggregate.COUNT, None, predicates[i % n_unique])
            for i in range(n_queries)
        ]

        def run():
            db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
            if not cached:
                from repro.plan import QueryPlanner

                db._planner = QueryPlanner(db, cache=False)
            return db.ask_batch(queries)

        return run

    return setup


def _qdb_overlap_memmap(
    h: int, n: int, ram_budget: int
) -> Callable[[], Callable[[], object]]:
    """The ``_qdb_overlap`` workload with the packed history on disk.

    Same probes and history as ``qdb_overlap_h2000``, but the
    :class:`~repro.qdb.QueryHistory` keeps its packed mask log in a
    memory-mapped word store scanned in ``chunk_rows`` slices under
    *ram_budget* — the session-history-larger-than-RAM configuration.
    Absolute baseline only: the point is that out-of-core histories stay
    within tolerance of the committed normalized time, not a speedup.
    """
    max_overlap = (2 * n) // 5

    def setup():
        rng = np.random.default_rng(11)
        hist_masks = rng.random((h, n)) < 0.5
        probes = list(rng.random((8, n)) < 0.5)
        policy = OverlapControl(max_overlap)
        history = QueryHistory(n, store="memmap", ram_budget=ram_budget)
        for m in hist_masks:
            history.record(LogEntry(_QDB_DUMMY_QUERY, m, True, 1.0))

        def run():
            for probe in probes:
                reason = policy.review(_QDB_DUMMY_QUERY, probe, None, history)
                if reason is not None:  # would skew the timing
                    raise RuntimeError(f"unexpected refusal: {reason}")

        return run

    return setup


def _qdb_ask_batch(
    n: int, n_queries: int, n_unique: int
) -> Callable[[], Callable[[], object]]:
    """End-to-end batched workload: mask cache + policy pipeline.

    Replays a ``n_queries``-query workload with ``n_unique`` distinct
    threshold predicates (COUNT/SUM/AVG mix) through ``ask_batch`` on a
    fresh size-control + sum-audit database each rep.
    """

    def setup():
        pop = patients(n, seed=3)
        columns = ("height", "weight", "age")
        predicates = []
        for i in range(n_unique):
            column = columns[i % len(columns)]
            quantile = (i % 17 + 1) / 18.0
            value = float(np.quantile(pop[column], quantile))
            predicates.append(
                Comparison(column, "<=" if i % 2 else ">", value)
            )
        aggregates = (Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG)
        queries = []
        for i in range(n_queries):
            aggregate = aggregates[i % len(aggregates)]
            column = None if aggregate is Aggregate.COUNT else "blood_pressure"
            queries.append(Query(aggregate, column, predicates[i % n_unique]))

        def run():
            db = StatisticalDatabase(
                pop, [QuerySetSizeControl(5), SumAuditPolicy()]
            )
            return db.ask_batch(queries)

        return run

    return setup


def _qdb_ask_batch_telemetry(
    n: int, n_queries: int, n_unique: int
) -> Callable[[], Callable[[], object]]:
    """The ``qdb_ask_batch`` workload inside a live telemetry session.

    Each rep enables telemetry (buffered tracer, no JSONL sink — disk
    I/O would swamp the instrumentation cost being measured), replays
    the identical batched workload, and disables again, so the timed
    delta against the bare ``qdb_ask_batch`` kernel is the full enabled
    cost: session setup, one ``qdb.query`` span with attribute assembly
    per query, the ``ask_batch`` parent span, histogram observations,
    and the end-of-session counter fold.  OVERHEAD_PAIRS bounds the
    ratio at <10% — the telemetry-cost datapoint of the bench
    trajectory.
    """
    base_setup = _qdb_ask_batch(n, n_queries, n_unique)

    def setup():
        from repro.telemetry import instrument

        run_bare = base_setup()

        def run():
            with instrument.session():
                return run_bare()

        return run

    return setup


def _qdb_ask_batch_observatory(
    n: int, n_queries: int, n_unique: int
) -> Callable[[], Callable[[], object]]:
    """The ``qdb_ask_batch`` workload with a live observatory attached.

    Telemetry session plus ``Observatory().attach(tracer)`` — per-span
    series folding, detectors, and rule evaluation, but no service
    layer.  This is the reference side of the ``observatory_sse_fanout``
    overhead pair: the monitoring cost the observatory already charges
    when attached live, so the pair isolates what the *service*
    (session timelines, event bus, HTTP/SSE fan-out) adds on top.
    """
    base_setup = _qdb_ask_batch(n, n_queries, n_unique)

    def setup():
        from repro.telemetry import instrument
        from repro.telemetry.observatory import Observatory

        run_bare = base_setup()

        def run():
            with instrument.session() as active_tracer:
                observatory = Observatory().attach(active_tracer)
                try:
                    return run_bare()
                finally:
                    observatory.detach()

        return run

    return setup


def _qdb_ask_batch_service(
    n: int, n_queries: int, n_unique: int
) -> Callable[[], Callable[[], object]]:
    """The ``qdb_ask_batch`` workload with the observatory *service* live.

    On top of the live-observatory cost, this attaches the resident
    service — session-timeline folding, event-bus point/alert fan-out —
    with a real HTTP server and one connected SSE client draining
    ``/events`` throughout.  The server, service, and drain client
    persist across reps (they are the resident infrastructure); each rep
    opens a fresh telemetry session and attaches/detaches the service.
    OVERHEAD_PAIRS bounds the ratio against the observatory-attached
    reference at <10% (the ISSUE 8 gate): exposing the observatory over
    HTTP/SSE must cost the monitored engine almost nothing beyond the
    monitoring itself.
    """
    base_setup = _qdb_ask_batch(n, n_queries, n_unique)
    state: dict = {}

    def setup():
        import threading
        from urllib.request import urlopen

        from repro.telemetry import instrument
        from repro.telemetry.observatory.service import (
            ObservatoryService,
            create_server,
        )

        run_bare = base_setup()
        if not state:
            service = ObservatoryService()
            server = create_server(service)
            host, port = server.server_address[:2]
            threading.Thread(
                target=server.serve_forever, name="bench-observatory-http",
                daemon=True,
            ).start()
            ready = threading.Event()

            def drain():
                with urlopen(f"http://{host}:{port}/events") as response:
                    for _ in response:
                        if not ready.is_set():
                            ready.set()

            threading.Thread(
                target=drain, name="bench-sse-drain", daemon=True
            ).start()
            if not ready.wait(timeout=10.0):
                raise RuntimeError("benchmark SSE drain failed to connect")
            state["service"] = service

        service = state["service"]

        def run():
            with instrument.session() as active_tracer:
                service.attach(active_tracer)
                try:
                    return run_bare()
                finally:
                    service.detach()

        return run

    return setup


# Ops submitted per serving_qps rep; results["serving"]["qps"] is this
# divided by the kernel's median rep seconds.
_SERVING_QPS_OPS = 256
# Serialized asks per serving_p99 rep; every per-op latency lands in
# _SERVING_STATE["latencies"] for the p99 section of the JSON record.
_SERVING_P99_OPS = 64

# Resident serving infrastructure shared by the serving_* kernels (the
# same pattern as the observatory service kernel: booting shard worker
# pools per rep would time thread creation, not the serving hot path).
_SERVING_STATE: dict = {}


def _serving_runtime(n: int, shards: int):
    """The resident sharded runtime + scripted op mix (built once)."""
    if not _SERVING_STATE:
        from repro.serving import ServingRuntime

        pop = patients(n, seed=3)
        # Stateless policy stack (size control only): the stateful
        # audits grow history across reps, which would trend the rep
        # time instead of measuring steady-state dispatch throughput.
        runtime = ServingRuntime(
            pop, shards=shards, sum_audit=False, shared_audit=False,
            queue_depth=4096,
            pir_values=[int(v) for v in pop["blood_pressure"][:64]],
        )
        atexit.register(runtime.close)
        columns = ("height", "weight", "age")
        pool = []
        for i in range(24):
            column = columns[i % len(columns)]
            quantile = (i % 11 + 1) / 12.0
            value = float(np.quantile(pop[column], quantile))
            op = "<=" if i % 2 else ">"
            aggregate = ("COUNT(*)", "SUM(blood_pressure)",
                         "AVG(blood_pressure)")[i % 3]
            pool.append(f"SELECT {aggregate} WHERE {column} {op} {value:g}")
        rng = np.random.default_rng(7)
        script = []
        for i in range(_SERVING_QPS_OPS):
            session = f"bench-user-{i % 16}"
            if i % 4 == 0:
                indices = [int(j) for j in rng.integers(64, size=4)]
                script.append((session, "pir", indices))
            else:
                script.append((session, "qdb", pool[i % len(pool)]))
        _SERVING_STATE.update(
            runtime=runtime, script=script, latencies=[],
        )
    return _SERVING_STATE


def _serving_qps(n: int, shards: int) -> Callable[[], Callable[[], object]]:
    """Sustained sharded throughput: submit a mixed op burst, await all.

    One rep pipelines :data:`_SERVING_QPS_OPS` operations (3:1
    statistical queries to 4-index PIR scatters, 16 sessions) through
    the resident runtime's admission + router + shard worker pools and
    blocks until every future resolves — the serving path end to end,
    including cross-thread handoff, batch grouping, and `ask_batch`
    dispatch.  ``results["serving"]["qps"]`` derives from this kernel's
    median rep time.
    """

    def setup():
        state = _serving_runtime(n, shards)
        runtime = state["runtime"]
        script = state["script"]

        def run():
            futures = []
            for session, kind, payload in script:
                if kind == "qdb":
                    futures.append(runtime.submit(session, payload))
                else:
                    futures.append(runtime.submit_pir(session, payload,
                                                      seed=11))
            for future in futures:
                answer = future.result()
                if getattr(answer, "refused", False):
                    raise RuntimeError(  # would skew the timing
                        f"unexpected refusal: {answer.reason}"
                    )
            return futures

        return run

    return setup


def _serving_p99(n: int, shards: int) -> Callable[[], Callable[[], object]]:
    """Tail latency of the serialized request path.

    One rep issues :data:`_SERVING_P99_OPS` blocking ``runtime.ask``
    calls (no pipelining: each op pays the full submit -> queue ->
    worker -> future round trip alone) and records every per-op wall
    time; ``results["serving"]["p99_seconds"]`` is the 99th percentile
    over all reps and trials, gated against
    ``MAX_SERVING_P99_NORMALIZED`` under ``--check``.
    """

    def setup():
        state = _serving_runtime(n, shards)
        runtime = state["runtime"]
        latencies = state["latencies"]
        queries = [payload for _, kind, payload in state["script"]
                   if kind == "qdb"][:_SERVING_P99_OPS]

        def run():
            for i, query in enumerate(queries):
                t0 = time.perf_counter()
                answer = runtime.ask(f"bench-p99-{i % 8}", query)
                latencies.append(time.perf_counter() - t0)
                if answer.refused:
                    raise RuntimeError(
                        f"unexpected refusal: {answer.reason}"
                    )

        return run

    return setup


def _serving_telemetry_qps(
    n: int, shards: int, traced: bool
) -> Callable[[], Callable[[], object]]:
    """The ``serving_qps`` workload inside a live telemetry session.

    Each rep opens a telemetry session (buffered tracer, no JSONL sink)
    and replays the identical mixed-op burst through the *same* resident
    runtime.  With ``traced=False`` request tracing is sampled out (the
    per-session sequence numbers still advance, nothing else happens):
    that is ``ref_telemetry_serving_qps``, the engine/serving span cost
    that ISSUE 5 already charges when telemetry is on.  With
    ``traced=True`` every request materialises its trace context — id
    minting, eight monotonic marks across threads, the
    ``serving.request`` span with its stage decomposition, and seven
    per-shard stage-histogram observations (with exemplar tracking) per
    request.  OVERHEAD_PAIRS bounds traced/reference at <10% — the
    ISSUE 10 traced-path gate isolates what *tracing* adds on top of
    the (already live) telemetry, mirroring how observatory_sse_fanout
    is gated against its observatory-attached reference.
    """
    base_setup = _serving_qps(n, shards)

    def setup():
        from repro.telemetry import instrument

        run_bare = base_setup()
        runtime = _SERVING_STATE["runtime"]
        trace_every = 1 if traced else (1 << 30)

        def run():
            previous = runtime._trace_every
            runtime._trace_every = trace_every
            try:
                with instrument.session():
                    return run_bare()
            finally:
                runtime._trace_every = previous

        return run

    return setup


def _serving_profiled_qps(
    n: int, shards: int
) -> Callable[[], Callable[[], object]]:
    """The ``serving_qps`` workload under the continuous profiler.

    An untraced rep (no telemetry session) with a
    :class:`~repro.telemetry.profiler.SamplingProfiler` interrupting the
    process ~100 times a second: the delta against bare ``serving_qps``
    is what always-on profiling steals from the serving hot path — GIL
    contention from ``sys._current_frames`` plus the stack folds.  The
    profiler starts and stops *inside* each rep (thread start/join is
    ~0.5% of a rep) rather than staying resident: a resident sampler
    would interrupt every later kernel too, including the bare side of
    its own overhead pair, and quietly measure the ratio against a
    profiled baseline.  OVERHEAD_PAIRS bounds the ratio at <5%, the
    tighter ISSUE 10 gate: sampling must stay cheap enough to leave on.
    """
    base_setup = _serving_qps(n, shards)

    def setup():
        from repro.telemetry.profiler import SamplingProfiler

        run_bare = base_setup()

        def run():
            with SamplingProfiler(hz=101):
                return run_bare()

        return run

    return setup


KERNELS: list[Kernel] = [
    Kernel("pir_single_retrieve_n1024", _pir_single(1024), reps=10),
    Kernel("pir_single_retrieve_n4096", _pir_single(4096), reps=5),
    Kernel("pir_batch64_retrieve_n4096", _pir_batch(4096, 64), reps=2),
    Kernel("pir_batch64_retrieve_n65536", _pir_batch(65536, 64), reps=2),
    Kernel("ref_uint8_pir_batch64_retrieve_n65536",
           _pir_uint8_batch(65536, 64), reps=1, reference_only=True),
    # 262144 x 64-byte blocks = 16 MiB on disk, scanned under a 2 MiB
    # budget (32768-row chunks): the databases-larger-than-RAM shape, at
    # a size every CI machine can still hold on disk.
    Kernel("pir_memmap_batch8_retrieve_n262144",
           _pir_memmap_batch(262144, 8, ram_budget=2 << 20), reps=1),
    Kernel("pir_square_retrieve_n4096", _pir_square(4096), reps=10),
    Kernel("pir_multiserver3_retrieve_n1024", _pir_multiserver(1024, 3), reps=5),
    Kernel("pir_faulty_batch64_retrieve_n4096", _pir_faulty_batch(4096, 64),
           reps=2),
    Kernel("pir_faulty_retrieve_n1024", _pir_faulty_single(1024), reps=5),
    Kernel("seed_pir_single_retrieve_n4096", _seed_pir_single(4096), reps=1,
           reference_only=True),
    Kernel("mdav_n1000_k5", _mdav(1000, 5), reps=1),
    Kernel("mdav_n2000_k10", _mdav(2000, 10), reps=1),
    Kernel("linkage_n600", _linkage(600), reps=1),
    Kernel("qdb_overlap_h2000", _qdb_overlap(2000, 5000), reps=5),
    Kernel("seed_qdb_overlap", _qdb_overlap(2000, 5000, seed_impl=True),
           reps=1, reference_only=True),
    Kernel("ref_uint8_qdb_overlap_h2000", _qdb_overlap_uint8(2000, 5000),
           reps=5, reference_only=True),
    # 2000 x 5000-bit packed rows = ~1.2 MiB of history, scanned under a
    # 1 MiB budget (two chunks): the out-of-core session-history shape.
    Kernel("qdb_memmap_history_overlap",
           _qdb_overlap_memmap(2000, 5000, ram_budget=1 << 20), reps=5),
    # n=20000 keeps the overlap scan (H x n/64 words) the dominant cost
    # the fusion removes; the shared sum-audit arithmetic is O(n) and
    # amortizes its per-call numpy overhead at this width.
    Kernel("qdb_fused_audit_h2000", _qdb_fused_audit(2000, 20000), reps=3),
    Kernel("ref_unfused_qdb_audit_h2000",
           _qdb_fused_audit(2000, 20000, use_plans=False),
           reps=1, reference_only=True),
    Kernel("qdb_plan_cache_batch", _qdb_plan_cache_batch(250, 256, 16),
           reps=3),
    Kernel("ref_cold_plan_ask_batch",
           _qdb_plan_cache_batch(250, 256, 16, cached=False),
           reps=3, reference_only=True),
    Kernel("qdb_sum_audit", _qdb_sum_audit(2000, 5000, 400), reps=3),
    Kernel("seed_qdb_sum_audit",
           _qdb_sum_audit(2000, 5000, 400, seed_impl=True),
           reps=1, reference_only=True),
    # The overhead pair runs 3 reps per trial: one ~58 ms rep is noisy
    # enough to flip the <10% telemetry-overhead gate on scheduler jitter.
    Kernel("qdb_ask_batch", _qdb_ask_batch(5000, 256, 32), reps=3),
    Kernel("telemetry_overhead_qdb_ask_batch",
           _qdb_ask_batch_telemetry(5000, 256, 32), reps=3),
    Kernel("ref_observatory_attached_ask_batch",
           _qdb_ask_batch_observatory(5000, 256, 32), reps=3,
           reference_only=True),
    Kernel("observatory_sse_fanout",
           _qdb_ask_batch_service(5000, 256, 32), reps=3),
    # The sharded serving runtime (ISSUE 9): pipelined mixed-op
    # throughput and serialized round-trip tail latency over resident
    # 4-shard worker pools (n=5000 records, 64 PIR blocks).
    Kernel("serving_qps", _serving_qps(5000, 4), reps=3),
    Kernel("serving_p99", _serving_p99(5000, 4), reps=3),
    # The ISSUE 10 observability-cost pairs: the same resident runtime
    # and op script under a live telemetry session with tracing sampled
    # out (reference), with every request traced, and (separately,
    # telemetry off) with the ~100 Hz sampling profiler resident.
    Kernel("ref_telemetry_serving_qps",
           _serving_telemetry_qps(5000, 4, traced=False), reps=3,
           reference_only=True),
    Kernel("serving_traced_qps",
           _serving_telemetry_qps(5000, 4, traced=True), reps=3),
    Kernel("serving_profiled_qps", _serving_profiled_qps(5000, 4), reps=3),
]


def calibrate() -> float:
    """Seconds for a fixed numpy workload; the machine-speed yardstick."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(192, 192))
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(5):
            b = a @ a
            float(np.sort(b, axis=None)[-10:].sum())
        best = min(best, (time.perf_counter() - t0) / 5)
    return best


def time_kernel(kernel: Kernel, trials: int) -> tuple[float, float]:
    """(median, best) over *trials* of the mean per-rep wall time.

    The median is what the absolute baselines compare against; the best
    (minimum) is recorded in the JSON for post-hoc noise analysis,
    because scheduler noise only ever *inflates* a sample.  The overhead
    gates do not use either — they re-time their kernel pairs interleaved
    (:func:`time_overhead_ratio`), which independent timings like these
    cannot replace on a shared machine.
    """
    run = kernel.setup()
    run()  # warm-up (bit matrices, caches) outside the timed region
    samples = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(kernel.reps):
            run()
        samples.append((time.perf_counter() - t0) / kernel.reps)
    return statistics.median(samples), min(samples)


def _counter_totals() -> dict[str, int]:
    """Aggregated process-registry counter values (live + folded)."""
    return process_registry().snapshot()["counters"]


def time_overhead_ratio(
    wrapped: Kernel,
    bare: Kernel,
    trials: int,
    cpu_time: bool = False,
    samples_scale: int = 1,
) -> float:
    """Median pairwise ratio from *interleaved* single-rep trials.

    The overhead gates discriminate a 10% bound, which independent
    kernel timings cannot do on a shared machine: load phases (another
    tenant, the scheduler) can last seconds and inflate samples by
    double-digit percentages, swallowing the signal entirely.  So the
    pair alternates at single-rep granularity — bare, wrapped, bare,
    wrapped — and each adjacent pair yields one wrapped/bare ratio taken
    under (almost) the same load; the median of those ratios discards
    the pairs a load transition split down the middle.

    With ``cpu_time`` (the CPU_CLOCK_OVERHEADS pairs) the ratio is
    taken on :func:`time.process_time` — summed CPU seconds across all
    threads — instead of wall time; see CPU_CLOCK_OVERHEADS for why
    multi-threaded pairs cannot be wall-gated on a one-core box.

    ``samples_scale`` multiplies the pair count.  The serving pairs use
    it because their per-rep *work* is stochastic even on a quiet
    machine: batch grouping depends on thread interleaving, so one rep
    may dispatch 256 singleton groups and the next a handful of wide
    batches, and the two halves of a pair draw that lottery
    independently.  Single-pair ratios spread roughly 0.9x-1.2x around
    a ~1.06 center; a median over ~15 pairs still wobbles by a few
    points around a 1.10 gate, while ~45 pairs pins it.
    """
    run_wrapped = wrapped.setup()
    run_bare = bare.setup()
    run_wrapped()  # warm-up both outside the timed region
    run_bare()
    clock = time.process_time if cpu_time else time.perf_counter
    ratios = []
    for _ in range(trials * max(wrapped.reps, bare.reps) * samples_scale):
        # A full collection *between* samples, outside the timed
        # region: whether a gen-2 sweep of the resident benchmark heap
        # lands inside the bare or the wrapped half is pure luck, and at
        # a 10% discrimination bound that luck is bigger than the
        # signal.  Allocation pressure the wrapped layer adds still
        # shows up — young-generation collections triggered by its own
        # garbage run inside the timed window as before.  (gc.freeze()
        # around this loop was tried and reverted: with the resident
        # heap frozen the collector's long-lived total collapses, full
        # collections fire far more often, and the span-buffer-holding
        # wrapped kernels pay for every one of them.)
        gc.collect()
        t0 = clock()
        run_bare()
        bare_seconds = clock() - t0
        t0 = clock()
        run_wrapped()
        ratios.append((clock() - t0) / bare_seconds)
    return statistics.median(ratios)


def run_benchmarks(trials: int, names: list[str] | None = None) -> dict:
    calibration = calibrate()
    results: dict = {
        "schema": 5,
        "generated_by": "python -m benchmarks.runner",
        "calibration_seconds": calibration,
        "trials": trials,
        "backend": backend_info(),
        "kernels": {},
        "speedups": {},
        "overheads": {},
    }
    for kernel in KERNELS:
        if names and kernel.name not in names:
            continue
        before = _counter_totals()
        median, best = time_kernel(kernel, trials)
        after = _counter_totals()
        # What the kernel's workload cost in telemetry counters: the
        # components die with the timing closure and fold their totals
        # into the process registry, so the delta covers the whole run.
        counters = {
            name: value - before.get(name, 0)
            for name, value in after.items()
            if value != before.get(name, 0)
        }
        # Schema 4: per-kernel plan-cache efficiency, from the same
        # counter fold the totals come from (zeros for kernels whose
        # workload never touches the planner).
        hits = counters.get("qdb.plan_cache_hits", 0)
        misses = counters.get("qdb.plan_cache_misses", 0)
        results["kernels"][kernel.name] = {
            "median_seconds": median,
            "best_seconds": best,
            "normalized": median / calibration,
            "reps": kernel.reps,
            "reference_only": kernel.reference_only,
            "counters": counters,
            "plan_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            },
        }
    pair_groups = [
        (fast, ref, suffix)
        for pairs, suffix in ((SPEEDUP_PAIRS, "seed"), (UINT8_PAIRS, "uint8"))
        for fast, ref in pairs
    ] + PLAN_PAIRS
    for fast_name, ref_name, suffix in pair_groups:
        ref = results["kernels"].get(ref_name)
        fast = results["kernels"].get(fast_name)
        if ref and fast:
            results["speedups"][f"{fast_name}_vs_{suffix}"] = (
                ref["median_seconds"] / fast["median_seconds"]
            )
    by_name = {kernel.name: kernel for kernel in KERNELS}
    for wrapped_name, bare_name in OVERHEAD_PAIRS:
        if wrapped_name in results["kernels"] and bare_name in results["kernels"]:
            cpu = wrapped_name in CPU_CLOCK_OVERHEADS
            results["overheads"][f"{wrapped_name}_vs_bare"] = (
                time_overhead_ratio(by_name[wrapped_name], by_name[bare_name],
                                    trials, cpu_time=cpu,
                                    samples_scale=5 if cpu else 1)
            )
    # Schema 5: the serving section — sustained qps, tail latency, and
    # the resident runtime's per-shard counters.
    if {"serving_qps", "serving_p99"} & set(results["kernels"]):
        serving: dict = {}
        qps_entry = results["kernels"].get("serving_qps")
        if qps_entry:
            serving["ops_per_rep"] = _SERVING_QPS_OPS
            serving["qps"] = _SERVING_QPS_OPS / qps_entry["median_seconds"]
        latencies = _SERVING_STATE.get("latencies")
        if latencies:
            p99 = float(np.percentile(latencies, 99))
            serving["p99_seconds"] = p99
            serving["p99_normalized"] = p99 / calibration
            serving["latency_samples"] = len(latencies)
        runtime = _SERVING_STATE.get("runtime")
        if runtime is not None:
            stats = runtime.stats()
            serving["n_shards"] = stats["n_shards"]
            serving["per_shard"] = stats["shards"]
        results["serving"] = serving
    return results


def check_regressions(
    results: dict, tolerance: float, baselines: dict | None = None
) -> list[str]:
    """Normalized-time comparison against the committed baselines."""
    if baselines is None:
        baselines = BASELINES
    failures = []
    if not baselines:
        failures.append(
            "the committed baseline contains no kernels — the check guards "
            "nothing; regenerate benchmarks/baselines.py with `make "
            "bench-refresh` (trials >= 5) and commit the normalized values"
        )
    if not results["kernels"]:
        failures.append(
            "no kernels were timed in this run — nothing to compare; run "
            "without --kernels or pass at least one registered name"
        )
    recorded_backend = results.get("backend", {}).get("name")
    if recorded_backend is not None and recorded_backend != BASELINE_BACKEND:
        failures.append(
            f"kernel backend mismatch: this run used {recorded_backend!r} "
            f"but the committed baselines were measured with "
            f"{BASELINE_BACKEND!r} — absolute times are not comparable; "
            f"either unset REPRO_KERNELS (or fix the toolchain so "
            f"{BASELINE_BACKEND!r} probes successfully) or regenerate the "
            f"baselines on this backend and update BASELINE_BACKEND"
        )
    for name, entry in results["kernels"].items():
        if entry["reference_only"]:
            continue
        baseline = baselines.get(name)
        if baseline is None:
            continue
        if entry["normalized"] > baseline * tolerance:
            failures.append(
                f"{name}: normalized {entry['normalized']:.2f} exceeds "
                f"baseline {baseline:.2f} x tolerance {tolerance:.2f}"
            )
    speedup_groups = [
        (fast, suffix, what)
        for pairs, suffix, what in (
            (SPEEDUP_PAIRS, "seed", "the seed implementation"),
            (UINT8_PAIRS, "uint8", "the uint8 kernels it replaced"),
        )
        for fast, _ in pairs
    ] + [
        (fast, suffix, {
            "unfused": "the unfused per-policy pipeline",
            "cold": "cold per-query plan compilation",
        }[suffix])
        for fast, _, suffix in PLAN_PAIRS
    ]
    for fast_name, suffix, what in speedup_groups:
        key = f"{fast_name}_vs_{suffix}"
        speedup = results["speedups"].get(key)
        required = MIN_SPEEDUPS.get(key)
        if (speedup is not None and required is not None
                and speedup < required):
            failures.append(
                f"{fast_name}: only {speedup:.1f}x faster than {what} "
                f"(required: {required}x)"
            )
    for wrapped_name, bare_name in OVERHEAD_PAIRS:
        overhead = results.get("overheads", {}).get(
            f"{wrapped_name}_vs_bare"
        )
        allowed = MAX_OVERHEADS.get(wrapped_name)
        if overhead is not None and allowed is not None and overhead > allowed:
            failures.append(
                f"{wrapped_name}: {overhead:.3f}x the bare {bare_name} "
                f"(allowed: {allowed}x) — the fault layer leaked work into "
                f"the fault-free path"
            )
    p99_normalized = (results.get("serving") or {}).get("p99_normalized")
    if (p99_normalized is not None
            and p99_normalized > MAX_SERVING_P99_NORMALIZED * tolerance):
        failures.append(
            f"serving p99: normalized {p99_normalized:.3f} exceeds "
            f"{MAX_SERVING_P99_NORMALIZED:.3f} x tolerance {tolerance:.2f} "
            f"— the serialized request round trip grew a tail"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.runner",
        description="Time the hot-path kernels and check for regressions.",
    )
    parser.add_argument("--trials", type=int, default=5,
                        help="timing trials per kernel (median is kept)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a kernel regresses past "
                             "baseline x tolerance")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the baseline comparison entirely")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed slowdown factor over the baseline")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="where to write the JSON record")
    parser.add_argument("--kernels", nargs="*", default=None,
                        help="subset of kernel names to run")
    parser.add_argument("--list", action="store_true",
                        help="print the registered kernel names and exit")
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(k.name) for k in KERNELS)
        for kernel in KERNELS:
            tag = "  [seed reference]" if kernel.reference_only else ""
            print(f"{kernel.name:<{width}s}  reps={kernel.reps}{tag}")
        return 0

    if args.kernels is not None:
        known = {k.name for k in KERNELS}
        unknown = [name for name in args.kernels if name not in known]
        if unknown:
            parser.error(
                f"unknown kernel(s): {', '.join(unknown)} "
                f"(choose from: {', '.join(sorted(known))})"
            )

    results = run_benchmarks(args.trials, args.kernels)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")

    width = max(len(k) for k in results["kernels"])
    print(f"calibration: {results['calibration_seconds'] * 1e3:.2f} ms")
    print(f"kernel backend: {results['backend']['name']} "
          f"(numpy {results['backend']['numpy']})")
    for name, entry in results["kernels"].items():
        print(f"  {name:<{width}s} {entry['median_seconds'] * 1e3:10.3f} ms "
              f"(normalized {entry['normalized']:8.2f})")
    for name, value in results["speedups"].items():
        print(f"  {name}: {value:.1f}x")
    for name, value in results["overheads"].items():
        print(f"  {name}: {value:.3f}x")

    if args.no_compare:
        return 0
    failures = check_regressions(results, args.tolerance)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if failures and args.check:
        return 1
    if not failures:
        print("all kernels within baseline tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
