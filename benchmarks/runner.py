"""Benchmark-regression harness for the vectorized hot-path kernels.

Times the named kernels (PIR single/batch retrieval at several database
sizes, MDAV microaggregation at several n x k, probabilistic linkage),
normalizes wall times against a machine calibration loop, writes the
results to ``BENCH_hotpaths.json``, and — with ``--check`` — compares the
normalized times against the committed baselines in
:mod:`benchmarks.baselines`, exiting nonzero on regression.

Usage::

    python -m benchmarks.runner                      # time + write JSON
    python -m benchmarks.runner --check              # fail on regression
    python -m benchmarks.runner --trials 1 --no-compare   # CI smoke

A pure-Python replica of the seed's per-byte XOR loop is timed alongside
the vectorized kernel so the recorded ``speedup_vs_seed`` stays honest on
every machine.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.attacks import ProbabilisticLinkageAttack
from repro.data import patients
from repro.pir import MultiServerXorPIR, SquareSchemePIR, TwoServerXorPIR
from repro.sdc.microaggregation import mdav_groups

from .baselines import BASELINES, MIN_SPEEDUP_VS_SEED, TOLERANCE

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"

SEED_REFERENCE_KERNEL = "seed_pir_single_retrieve_n4096"
SPEEDUP_KERNEL = "pir_single_retrieve_n4096"


def _pir_blocks(n: int, block_size: int = 64) -> list[bytes]:
    return [bytes([i % 256]) * block_size for i in range(n)]


def _seed_style_retrieve(blocks: list[bytes], index: int, seed: int) -> bytes:
    """Faithful replica of the seed's per-byte two-server retrieval loop."""
    rng = np.random.default_rng(seed)
    n = len(blocks)
    subset = rng.random(n) < 0.5
    s1 = set(np.flatnonzero(subset).tolist())
    s2 = set(s1)
    s2 ^= {index}
    size = len(blocks[0])

    def answer(indices):
        acc = bytearray(size)
        for i in indices:
            block = blocks[i]
            for j in range(size):
                acc[j] ^= block[j]
        return bytes(acc)

    a1 = answer(sorted(s1))
    a2 = answer(sorted(s2))
    return bytes(x ^ y for x, y in zip(a1, a2))


@dataclass
class Kernel:
    """One named hot-path workload: setup once, time ``reps`` runs."""

    name: str
    setup: Callable[[], Callable[[], object]]
    reps: int = 1
    # Reference kernels document a comparison point (the seed's pure-Python
    # loop); they are never compared against baselines.
    reference_only: bool = False


def _pir_single(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = TwoServerXorPIR(_pir_blocks(n))
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _pir_batch(n: int, batch: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = TwoServerXorPIR(_pir_blocks(n))
        indices = list(range(0, n, max(1, n // batch)))[:batch]
        pir.retrieve_batch(indices[:2], 0)  # build the bit matrix once
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve_batch(indices, state["seed"])

        return run

    return setup


def _pir_square(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = SquareSchemePIR(_pir_blocks(n))
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _pir_multiserver(n: int, servers: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pir = MultiServerXorPIR(_pir_blocks(n), n_servers=servers)
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return pir.retrieve(n // 2, state["seed"])

        return run

    return setup


def _seed_pir_single(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        blocks = _pir_blocks(n)
        state = {"seed": 0}

        def run():
            state["seed"] += 1
            return _seed_style_retrieve(blocks, n // 2, state["seed"])

        return run

    return setup


def _mdav(n: int, k: int) -> Callable[[], Callable[[], object]]:
    def setup():
        matrix = np.random.default_rng(7).normal(size=(n, 4))
        return lambda: mdav_groups(matrix, k)

    return setup


def _linkage(n: int) -> Callable[[], Callable[[], object]]:
    def setup():
        pop = patients(n, seed=3)
        attack = ProbabilisticLinkageAttack(["height", "weight", "age"])
        return lambda: attack.run(pop, pop)

    return setup


KERNELS: list[Kernel] = [
    Kernel("pir_single_retrieve_n1024", _pir_single(1024), reps=10),
    Kernel("pir_single_retrieve_n4096", _pir_single(4096), reps=5),
    Kernel("pir_batch64_retrieve_n4096", _pir_batch(4096, 64), reps=2),
    Kernel("pir_square_retrieve_n4096", _pir_square(4096), reps=10),
    Kernel("pir_multiserver3_retrieve_n1024", _pir_multiserver(1024, 3), reps=5),
    Kernel(SEED_REFERENCE_KERNEL, _seed_pir_single(4096), reps=1,
           reference_only=True),
    Kernel("mdav_n1000_k5", _mdav(1000, 5), reps=1),
    Kernel("mdav_n2000_k10", _mdav(2000, 10), reps=1),
    Kernel("linkage_n600", _linkage(600), reps=1),
]


def calibrate() -> float:
    """Seconds for a fixed numpy workload; the machine-speed yardstick."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(192, 192))
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(5):
            b = a @ a
            float(np.sort(b, axis=None)[-10:].sum())
        best = min(best, (time.perf_counter() - t0) / 5)
    return best


def time_kernel(kernel: Kernel, trials: int) -> float:
    """Median over *trials* of the mean per-rep wall time."""
    run = kernel.setup()
    run()  # warm-up (bit matrices, caches) outside the timed region
    samples = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(kernel.reps):
            run()
        samples.append((time.perf_counter() - t0) / kernel.reps)
    return statistics.median(samples)


def run_benchmarks(trials: int, names: list[str] | None = None) -> dict:
    calibration = calibrate()
    results: dict = {
        "schema": 1,
        "generated_by": "python -m benchmarks.runner",
        "calibration_seconds": calibration,
        "trials": trials,
        "kernels": {},
        "speedups": {},
    }
    for kernel in KERNELS:
        if names and kernel.name not in names:
            continue
        median = time_kernel(kernel, trials)
        results["kernels"][kernel.name] = {
            "median_seconds": median,
            "normalized": median / calibration,
            "reps": kernel.reps,
            "reference_only": kernel.reference_only,
        }
    seed = results["kernels"].get(SEED_REFERENCE_KERNEL)
    fast = results["kernels"].get(SPEEDUP_KERNEL)
    if seed and fast:
        results["speedups"][f"{SPEEDUP_KERNEL}_vs_seed"] = (
            seed["median_seconds"] / fast["median_seconds"]
        )
    return results


def check_regressions(results: dict, tolerance: float) -> list[str]:
    """Normalized-time comparison against the committed baselines."""
    failures = []
    for name, entry in results["kernels"].items():
        if entry["reference_only"]:
            continue
        baseline = BASELINES.get(name)
        if baseline is None:
            continue
        if entry["normalized"] > baseline * tolerance:
            failures.append(
                f"{name}: normalized {entry['normalized']:.2f} exceeds "
                f"baseline {baseline:.2f} x tolerance {tolerance:.2f}"
            )
    speedup = results["speedups"].get(f"{SPEEDUP_KERNEL}_vs_seed")
    if speedup is not None and speedup < MIN_SPEEDUP_VS_SEED:
        failures.append(
            f"{SPEEDUP_KERNEL}: only {speedup:.1f}x faster than the seed "
            f"loop (required: {MIN_SPEEDUP_VS_SEED}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.runner",
        description="Time the hot-path kernels and check for regressions.",
    )
    parser.add_argument("--trials", type=int, default=5,
                        help="timing trials per kernel (median is kept)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a kernel regresses past "
                             "baseline x tolerance")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the baseline comparison entirely")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed slowdown factor over the baseline")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="where to write the JSON record")
    parser.add_argument("--kernels", nargs="*", default=None,
                        help="subset of kernel names to run")
    args = parser.parse_args(argv)

    if args.kernels is not None:
        known = {k.name for k in KERNELS}
        unknown = [name for name in args.kernels if name not in known]
        if unknown:
            parser.error(
                f"unknown kernel(s): {', '.join(unknown)} "
                f"(choose from: {', '.join(sorted(known))})"
            )

    results = run_benchmarks(args.trials, args.kernels)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")

    width = max(len(k) for k in results["kernels"])
    print(f"calibration: {results['calibration_seconds'] * 1e3:.2f} ms")
    for name, entry in results["kernels"].items():
        print(f"  {name:<{width}s} {entry['median_seconds'] * 1e3:10.3f} ms "
              f"(normalized {entry['normalized']:8.2f})")
    for name, value in results["speedups"].items():
        print(f"  {name}: {value:.1f}x")

    if args.no_compare:
        return 0
    failures = check_regressions(results, args.tolerance)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if failures and args.check:
        return 1
    if not failures:
        print("all kernels within baseline tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
