"""A1 — utility cost of satisfying 1, 2 or 3 privacy dimensions.

Section 6 poses this as the open problem: 'the impact on data utility of
offering the three dimensions of privacy (rather than just one or two of
them) should be investigated.'  We measure information loss (IL1s +
covariance error) and classifier accuracy for deployments covering
progressively more dimensions.
"""

import numpy as np

from repro.data import patients
from repro.mining import DecisionTree, accuracy, train_test_split_indices
from repro.ppdm import AgrawalSrikantRandomizer
from repro.sdc import (
    IdentityMasking,
    Microaggregation,
    assess_utility,
)

QI = ["height", "weight", "age"]


def _classifier_accuracy(pop, release):
    y = np.asarray(
        pop["blood_pressure"] > np.median(pop["blood_pressure"]), dtype=object
    )
    x = release.matrix(QI)
    x_true = pop.matrix(QI)
    tr, te = train_test_split_indices(pop.n_rows, 0.3, 0)
    tree = DecisionTree(max_depth=4).fit(x[tr], y[tr])
    return accuracy(y[te], tree.predict(x_true[te]))


def test_a1_utility_vs_dimension_count(benchmark):
    pop = patients(600, seed=31)
    rng = np.random.default_rng(5)

    deployments = {
        # dimensions covered -> release
        "0 dims (raw release)": IdentityMasking().mask(pop),
        "1 dim  (owner: AS noise)": AgrawalSrikantRandomizer(0.5).mask(pop, rng),
        "2 dims (resp+owner: microagg k=5)": Microaggregation(5).mask(pop),
        # All three: same masked release served over PIR — PIR adds *no*
        # extra data distortion, the paper's "for free" observation.
        "3 dims (microagg k=5 + PIR)": Microaggregation(5).mask(pop),
    }

    def run():
        rows = []
        for name, release in deployments.items():
            utility = assess_utility(pop, release, QI)
            acc = _classifier_accuracy(pop, release)
            rows.append((name, utility.il1s,
                         utility.covariance_discrepancy, acc))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A1: utility cost of covering more privacy dimensions")
    print(f"    {'deployment':36s} {'IL1s':>6s} {'cov-err':>8s} {'tree-acc':>9s}")
    for name, il, cov, acc in rows:
        print(f"    {name:36s} {il:>6.3f} {cov:>8.3f} {acc:>9.3f}")
    # Shape: masking costs utility; adding PIR on top costs nothing more.
    raw = rows[0]
    two_dims = rows[2]
    three_dims = rows[3]
    assert raw[1] == 0.0
    assert two_dims[1] > 0.0
    assert three_dims[1] == two_dims[1]  # PIR is utility-free
    assert three_dims[3] > 0.55  # the release still supports learning
