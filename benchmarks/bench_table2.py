"""T2 — Table 2: empirical scoring of the eight technology classes.

The headline reproduction: every technology class is deployed on a
synthetic patient population and attacked on all three dimensions; the
measured grades are compared cell by cell against the paper's Table 2.
"""

from repro.core import (
    Grade,
    PrivacyDimension,
    format_table2,
    score_technologies,
)

R, O, U = (
    PrivacyDimension.RESPONDENT,
    PrivacyDimension.OWNER,
    PrivacyDimension.USER,
)


def test_table2_reproduction(benchmark):
    comparison = benchmark.pedantic(
        lambda: score_technologies(seed=0), rounds=1, iterations=1
    )

    print()
    print("=" * 70)
    print("T2: Table 2 reproduction (empirical grades vs paper grades)")
    print("=" * 70)
    print(format_table2(comparison))

    # Shape assertions: exact agreement plus the orderings Section 5 argues.
    assert comparison.agreement == 1.0
    assert comparison.row("Crypto PPDM").grades[O] is Grade.HIGH
    assert comparison.row("PIR").grades[U] is Grade.HIGH
    assert comparison.row("PIR").grades[R] is Grade.NONE
    assert (
        comparison.row("Use-specific non-crypto PPDM + PIR").scores[U]
        < comparison.row("Generic non-crypto PPDM + PIR").scores[U]
    )
    assert (
        comparison.row("SDC").scores[R]
        > comparison.row("Generic non-crypto PPDM").scores[R]
    )
    assert (
        comparison.row("Generic non-crypto PPDM").scores[O]
        > comparison.row("SDC").scores[O]
    )
