"""A8 — scaling microaggregation with 2^d-tree blocking.

Solanas et al.'s blocking makes microaggregation practical at census
scale: this bench measures the wall-clock and information-loss trade
against plain MDAV across dataset sizes, plus a latency benchmark of each
at a fixed size.
"""

import time

from repro.data import patients
from repro.sdc import (
    BlockedMicroaggregation,
    Microaggregation,
    anonymity_level,
    il1s,
)

QI = ["height", "weight", "age"]


def test_a8_blocking_speedup(benchmark):
    def run():
        rows = []
        for n in (1000, 3000):
            pop = patients(n, seed=2)
            t0 = time.perf_counter()
            blocked = BlockedMicroaggregation(5, 256).mask(pop)
            t_blocked = time.perf_counter() - t0
            t0 = time.perf_counter()
            plain = Microaggregation(5).mask(pop)
            t_plain = time.perf_counter() - t0
            rows.append((
                n, t_plain, t_blocked,
                il1s(pop, plain, QI), il1s(pop, blocked, QI),
                anonymity_level(blocked, QI),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A8: plain MDAV vs 2^d-tree blocked microaggregation (k=5)")
    print(f"    {'n':>6s} {'MDAV s':>8s} {'blocked s':>10s} "
          f"{'IL1s MDAV':>10s} {'IL1s blk':>9s} {'k-anon':>7s}")
    for n, tp, tb, ilp, ilb, k in rows:
        print(f"    {n:>6d} {tp:>8.3f} {tb:>10.3f} "
              f"{ilp:>10.3f} {ilb:>9.3f} {k:>7d}")
    # Shape: blocking gets faster relative to MDAV as n grows, keeps
    # k-anonymity, and stays within 2x the information loss.
    small, large = rows
    assert large[2] < large[1]  # blocked faster at the large size
    assert all(k >= 5 for *_, k in rows)
    assert all(ilb < 2.0 * ilp for _, _, _, ilp, ilb, _ in rows)


def test_a8_blocked_latency(benchmark):
    pop = patients(2000, seed=4)
    method = BlockedMicroaggregation(5, 256)
    release = benchmark.pedantic(
        lambda: method.mask(pop), rounds=1, iterations=1
    )
    assert anonymity_level(release, QI) >= 5


def test_a8_mdav_latency(benchmark):
    pop = patients(2000, seed=4)
    method = Microaggregation(5)
    release = benchmark.pedantic(
        lambda: method.mask(pop), rounds=1, iterations=1
    )
    assert anonymity_level(release, QI) >= 5
