"""S2c — the [11] high-dimensional reconstruction disclosure sweep.

Owner privacy without respondent privacy, the 'subtler example' of
Section 2: the same per-attribute noise protects the owner equally at
every dimensionality, yet the respondent-disclosure rate of the joint
reconstruction attack *rises* with dimension as the data become sparse.
"""

import numpy as np

from repro.attacks import dimensionality_sweep
from repro.data import sparse_uniform
from repro.ppdm import AgrawalSrikantRandomizer

DIMS = [2, 3, 4, 5, 6]


def _sweep():
    def make_pop(d):
        return sparse_uniform(150, d, seed=7)

    def randomize(data):
        randomizer = AgrawalSrikantRandomizer(
            relative_scale=0.3, columns=list(data.column_names)
        )
        release = randomizer.mask(data, np.random.default_rng(1))
        noises = [randomizer.noise_models[c] for c in data.column_names]
        return release, noises

    return dimensionality_sweep(make_pop, randomize, dims=DIMS, bins=3)


def test_s2c_disclosure_rises_with_dimension(benchmark):
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("S2c [11]: joint-reconstruction disclosure vs dimensionality")
    print(f"    {'d':>3s} {'cell recovery':>14s} {'disclosure':>11s}")
    for report in reports:
        print(
            f"    {report.n_dims:>3d} {report.cell_recovery_rate:>14.3f} "
            f"{report.disclosure_rate:>11.3f}"
        )
    # Shape: low-dimensional data are safe; high-dimensional data leak.
    assert reports[0].disclosure_rate < 0.05
    assert reports[-1].disclosure_rate > 0.15
    assert reports[-1].disclosure_rate > reports[0].disclosure_rate
