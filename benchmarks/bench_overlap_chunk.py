"""Micro-benchmark: sweep OverlapControl's history chunk size.

``OverlapControl._review_packed`` scans the packed answered history in
chunks: small chunks exit earlier when a violation sits near the front
of the history, large chunks amortize per-call overhead (kernel
dispatch, the Python loop) over more rows.  This sweep times the two
workloads that bound the trade:

* **no-hit** — every probe scans the *entire* history (the benchmark
  gate's workload, and the common case for compliant query streams);
* **early-hit** — a violating query set sits in the first 64 history
  rows, so oversized chunks waste whole passes' worth of popcounts.

Refusal *decisions* are chunk-invariant (the scan preserves history
order, so the first violating entry is always the one reported); the
chunk only moves wall time.  The committed default
(``OverlapControl._CHUNK``) comes from this sweep's no-hit winner at
H=2000 — the depth the benchmark gate pins — sanity-checked against the
early-hit column; re-run after kernel-tier changes::

    PYTHONPATH=src python -m benchmarks.bench_overlap_chunk

and update the class default (or set ``REPRO_QDB_OVERLAP_CHUNK``) if the
optimum moved.
"""

from __future__ import annotations

import time

import numpy as np

from repro.qdb import (
    Aggregate,
    LogEntry,
    OverlapControl,
    Query,
    QueryHistory,
    TruePredicate,
)

_QDB_DUMMY_QUERY = Query(Aggregate.SUM, "x", TruePredicate())

CHUNKS = (128, 256, 512, 1024, 2048, 4096)
HISTORY_DEPTHS = (2000, 8000)
N_RECORDS = 5000
TRIALS = 5


def _history(h: int, n: int, early_hit: bool) -> tuple:
    """(history, probes): h answered ~n/2 sets plus 8 probe sets.

    With *early_hit*, one history row inside the first 64 is forced to a
    near-full query set, so every probe overlaps it immediately.
    """
    rng = np.random.default_rng(11)
    hist_masks = rng.random((h, n)) < 0.5
    if early_hit:
        hist_masks[min(32, h - 1)] = rng.random(n) < 0.98
    probes = list(rng.random((8, n)) < 0.5)
    history = QueryHistory(n)
    for mask in hist_masks:
        history.record(LogEntry(_QDB_DUMMY_QUERY, mask, True, 1.0))
    return history, probes


def _time_review(policy: OverlapControl, history, probes,
                 expect_refusal: bool) -> float:
    best = float("inf")
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        for probe in probes:
            reason = policy.review(_QDB_DUMMY_QUERY, probe, None, history)
            if (reason is not None) != expect_refusal:
                raise RuntimeError(
                    f"unexpected review outcome at chunk={policy.chunk}: "
                    f"{reason!r}"
                )
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    max_overlap = (2 * N_RECORDS) // 5
    print(f"n={N_RECORDS}, max_overlap={max_overlap}, 8 probes/rep, "
          f"best of {TRIALS}; times in ms")
    header = "H      workload   " + "".join(f"{c:>10d}" for c in CHUNKS)
    print(header)
    for h in HISTORY_DEPTHS:
        for early_hit in (False, True):
            history, probes = _history(h, N_RECORDS, early_hit)
            row = []
            for chunk in CHUNKS:
                policy = OverlapControl(max_overlap, chunk=chunk)
                row.append(_time_review(
                    policy, history, probes, expect_refusal=early_hit
                ))
            label = "early-hit" if early_hit else "no-hit"
            cells = "".join(f"{t * 1e3:10.3f}" for t in row)
            print(f"{h:<6d} {label:<10s}{cells}")
            best_chunk = CHUNKS[int(np.argmin(row))]
            print(f"{'':17s}best: chunk={best_chunk}")
    print(f"\ncommitted default: OverlapControl._CHUNK = "
          f"{OverlapControl._CHUNK}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
