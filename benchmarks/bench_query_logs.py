"""S1 — the AOL motivation: query-log re-identification vs PIR.

The paper opens with the August 2006 AOL log disclosure as the driver of
the user-privacy dimension.  This bench quantifies it: an adversary with
background knowledge of user interests matches pseudonymous plaintext
query logs to identities almost perfectly; under PIR the server's log is
content-free and matching collapses to chance.
"""

from repro.pir import (
    log_matching_attack,
    make_user_population,
    run_search_sessions,
)


def test_s1_aol_log_reidentification(benchmark):
    users = make_user_population(100, n_topics=20, seed=1)

    def run():
        rows = []
        for label, use_pir in (("plaintext server", False),
                               ("PIR server", True)):
            log = run_search_sessions(users, 40, use_pir=use_pir, seed=2)
            report = log_matching_attack(log, users, 3)
            rows.append((label, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("S1: AOL-style log matching, 100 users x 40 queries")
    for label, report in rows:
        print(
            f"    {label:18s} re-identified "
            f"{report.reidentification_rate:6.0%} "
            f"(chance {report.chance_rate:.0%})"
        )
    plaintext, pir = rows[0][1], rows[1][1]
    assert plaintext.reidentification_rate > 0.9
    assert pir.reidentification_rate < 0.1


def test_s1_history_length_sweep(benchmark):
    users = make_user_population(80, n_topics=20, seed=5)
    lengths = [1, 5, 20, 60]

    def run():
        return [
            (n, log_matching_attack(
                run_search_sessions(users, n, seed=6), users, 7
            ).reidentification_rate)
            for n in lengths
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("S1: re-identification vs history length (plaintext logs)")
    for n, rate in rows:
        print(f"    {n:>3d} queries -> {rate:6.0%}")
    rates = [r for _, r in rows]
    # Shape: longer histories are monotonically (weakly) more identifying.
    assert all(a <= b + 0.05 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > 0.8
