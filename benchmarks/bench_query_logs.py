"""S1 — the AOL motivation: query-log re-identification vs PIR.

The paper opens with the August 2006 AOL log disclosure as the driver of
the user-privacy dimension.  This bench quantifies it: an adversary with
background knowledge of user interests matches pseudonymous plaintext
query logs to identities almost perfectly; under PIR the server's log is
content-free and matching collapses to chance.
"""

import numpy as np

from repro.data import patients
from repro.pir import (
    log_matching_attack,
    make_user_population,
    run_search_sessions,
)
from repro.qdb import (
    Aggregate,
    Comparison,
    Query,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
)


def test_s1_aol_log_reidentification(benchmark):
    users = make_user_population(100, n_topics=20, seed=1)

    def run():
        rows = []
        for label, use_pir in (("plaintext server", False),
                               ("PIR server", True)):
            log = run_search_sessions(users, 40, use_pir=use_pir, seed=2)
            report = log_matching_attack(log, users, 3)
            rows.append((label, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("S1: AOL-style log matching, 100 users x 40 queries")
    for label, report in rows:
        print(
            f"    {label:18s} re-identified "
            f"{report.reidentification_rate:6.0%} "
            f"(chance {report.chance_rate:.0%})"
        )
    plaintext, pir = rows[0][1], rows[1][1]
    assert plaintext.reidentification_rate > 0.9
    assert pir.reidentification_rate < 0.1


def test_s1_history_length_sweep(benchmark):
    users = make_user_population(80, n_topics=20, seed=5)
    lengths = [1, 5, 20, 60]

    def run():
        return [
            (n, log_matching_attack(
                run_search_sessions(users, n, seed=6), users, 7
            ).reidentification_rate)
            for n in lengths
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("S1: re-identification vs history length (plaintext logs)")
    for n, rate in rows:
        print(f"    {n:>3d} queries -> {rate:6.0%}")
    rates = [r for _, r in rows]
    # Shape: longer histories are monotonically (weakly) more identifying.
    assert all(a <= b + 0.05 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > 0.8


def test_s1_qdb_log_replay_batched(benchmark):
    """The flip side of S1: the *statistical database* owner's query log.

    Because the owner sees every query in full (no user privacy — the
    paper's Section 3 point), the whole log can be replayed through the
    audited engine as one batched workload.  Real logs repeat heavily:
    the mask cache turns the repeats into hits and ``ask_batch`` keeps
    the refusal sequence identical to the live session.
    """
    pop = patients(2000, seed=9)
    rng = np.random.default_rng(4)
    columns = ("height", "weight", "age")
    unique = []
    for i in range(60):
        column = columns[i % len(columns)]
        value = float(np.quantile(pop[column], (i % 19 + 1) / 20.0))
        unique.append(Comparison(column, "<=" if i % 2 else ">", value))
    aggregates = (Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG)
    log = []
    for i in range(600):  # heavy-tailed repetition, like a real query log
        predicate = unique[int(rng.zipf(1.6)) % len(unique)]
        aggregate = aggregates[i % len(aggregates)]
        column = None if aggregate is Aggregate.COUNT else "blood_pressure"
        log.append(Query(aggregate, column, predicate))

    def run():
        db = StatisticalDatabase(
            pop, [QuerySetSizeControl(5), SumAuditPolicy()]
        )
        answers = db.ask_batch(log)
        return db, answers

    db, answers = benchmark.pedantic(run, rounds=1, iterations=1)
    answered = sum(a.ok for a in answers)
    print()
    print(
        f"S1/qdb: replayed {len(log)}-query log, {answered} answered; "
        f"mask cache {db.mask_cache_hits} hits / "
        f"{db.mask_cache_misses} misses"
    )
    assert len(answers) == len(log)
    # The log's repetition shows up as cache hits (one miss per unique
    # predicate at most).
    assert db.mask_cache_misses <= len(unique)
    assert db.mask_cache_hits == len(log) - db.mask_cache_misses
