"""S2a/S2c/S3b/S4b — the quadrant demonstrations of Sections 2-4.

Each benchmark realizes one quadrant (a dimension held with/without
another) and prints the measured privacy scores for both dimensions.
"""

import random

import numpy as np

from repro.attacks import (
    extraction_from_release,
    extraction_via_pir_download,
    isolation_attack,
)
from repro.core import (
    owner_privacy_from_transcript,
    respondent_privacy_score,
)
from repro.data import dataset_1, dataset_2, patients
from repro.pir import PrivateAggregateIndex, TwoServerXorPIR, profile_itpir
from repro.sdc import Condensation, Microaggregation, is_k_anonymous
from repro.smc import Transcript, ring_secure_sum

QI = ["height", "weight"]


def test_s2a_respondent_without_owner(benchmark):
    """Publishing Dataset 1 raw: respondents fine (3-anonymous), the
    owner's asset fully extractable."""
    def run():
        ds1 = dataset_1()
        anonymous = is_k_anonymous(ds1, 3, QI)
        extraction = extraction_from_release(ds1, ds1, QI)
        return anonymous, extraction.extraction_rate

    anonymous, extraction = benchmark(run)
    print()
    print("S2a respondent w/o owner: Dataset 1 published unmasked")
    print(f"    3-anonymous (respondent privacy): {anonymous}")
    print(f"    competitor extraction rate (owner privacy lost): {extraction:.0%}")
    assert anonymous and extraction == 1.0


def test_s2c_owner_without_respondent(benchmark):
    """Releasing one unique Dataset 2 record: respondent disclosed, the
    owner's asset essentially intact."""
    def run():
        ds2 = dataset_2()
        single = ds2.select(np.array([3]))
        respondent = respondent_privacy_score(single, single, QI)
        owner_loss = extraction_from_release(ds2, single, QI).extraction_rate
        return respondent, owner_loss

    respondent, owner_loss = benchmark(run)
    print()
    print("S2c owner w/o respondent: one unique Dataset 2 record released")
    print(f"    respondent privacy of the released record: {respondent:.2f}")
    print(f"    fraction of the owner's asset exposed: {owner_loss:.0%}")
    assert respondent < 0.1
    assert owner_loss <= 0.2


def test_s3b_respondent_and_user(benchmark):
    """k-anonymized records behind PIR: nobody isolated, queries hidden."""
    pop = patients(300, seed=4)

    def run():
        masked = Microaggregation(5).mask(pop)
        index = PrivateAggregateIndex(
            masked, QI, "blood_pressure",
            edges={
                "height": list(np.linspace(140, 210, 8)),
                "weight": list(np.linspace(30, 140, 8)),
            },
        )
        sweep = isolation_attack(index, pop.n_rows)
        profiling = profile_itpir(TwoServerXorPIR(list(range(64))), 150, 0)
        return len(sweep.victims), profiling.user_privacy

    victims, user = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("S3b respondent + user: k-anonymous release behind PIR")
    print(f"    respondents isolated by a full grid sweep: {victims}")
    print(f"    user privacy against the PIR servers: {user:.2f}")
    assert victims == 0 and user > 0.9


def test_s4b_owner_and_user(benchmark):
    """Condensed release + PIR; and the crypto-PPDM owner-only contrast."""
    pop = patients(300, seed=4)

    def run():
        release = Condensation(14).mask(pop, np.random.default_rng(1))
        owner = 1.0 - extraction_from_release(
            pop, release, ["height", "weight", "age"], 0.15
        ).extraction_rate
        pir_owner_loss = extraction_via_pir_download(pop).extraction_rate
        transcript = Transcript()
        ring_secure_sum([1, 2, 3], rng=random.Random(0), transcript=transcript)
        smc_owner = owner_privacy_from_transcript(
            transcript, {"P0": [1], "P1": [2], "P2": [3]}
        )
        return owner, pir_owner_loss, smc_owner

    owner, pir_loss, smc_owner = benchmark(run)
    print()
    print("S4b owner + user: condensation behind PIR")
    print(f"    owner privacy of the condensed release: {owner:.2f}")
    print(f"    (contrast) PIR over raw data, owner loss: {pir_loss:.0%}")
    print(f"    (contrast) crypto PPDM transcript owner privacy: {smc_owner:.2f}")
    assert owner > 0.55
    assert pir_loss == 1.0
    assert smc_owner == 1.0
