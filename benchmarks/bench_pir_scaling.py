"""A2 — PIR cost scaling (ablation).

Communication and latency of the retrieval schemes versus database size:
the O(n) two-server scheme, its O(sqrt n) square refinement, and
single-server computational PIR (linear and matrix layouts).
"""

import random

from repro.pir import (
    LinearCPIR,
    MatrixCPIR,
    MultiServerXorPIR,
    SquareSchemePIR,
    TwoServerXorPIR,
)

SIZES = [64, 256, 1024]


def test_a2_itpir_scaling(benchmark):
    def run():
        rows = []
        for n in SIZES:
            records = list(range(n))
            linear = TwoServerXorPIR(records)
            square = SquareSchemePIR(records)
            linear.retrieve(n // 2, 0)
            square.retrieve(n // 2, 0)
            rows.append((n, linear.upstream_bits, square.upstream_bits))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A2: IT-PIR upstream communication (bits per query)")
    print(f"    {'n':>6s} {'linear O(n)':>12s} {'square O(sqrt n)':>17s}")
    for n, linear_bits, square_bits in rows:
        print(f"    {n:>6d} {linear_bits:>12d} {square_bits:>17d}")
    # Shape: square grows ~4x slower than linear across a 16x size range.
    assert rows[-1][1] / rows[0][1] > 10
    assert rows[-1][2] / rows[0][2] < 6


def test_a2_itpir_latency(benchmark):
    pir = TwoServerXorPIR(list(range(1024)))
    result = benchmark(lambda: pir.retrieve_int(777, 0))
    assert result == 777


def test_a2_itpir_batch_amortization(benchmark):
    """Batched retrieval answers a whole query matrix per server, so the
    per-retrieval cost drops below the single-query path."""
    pir = TwoServerXorPIR(list(range(1024)))
    indices = list(range(0, 1024, 8))  # 128 retrievals per round
    pir.retrieve_batch(indices[:2], 0)  # build bit matrices outside timing

    result = benchmark(lambda: pir.retrieve_batch_int(indices, 0))
    assert result == indices
    # Amortized accounting matches the sequential formula per query.
    before = pir.upstream_bits
    pir.retrieve_batch(indices, 1)
    assert pir.upstream_bits == before + len(indices) * 2 * pir.n


def test_a2_cpir_upstream(benchmark):
    def run():
        rows = []
        for n in (16, 64, 144):
            linear = LinearCPIR(list(range(n)), key_bits=128,
                                rng=random.Random(1))
            matrix = MatrixCPIR(list(range(n)), key_bits=128,
                                rng=random.Random(2))
            assert linear.retrieve(n // 2) == n // 2
            assert matrix.retrieve(n // 2) == n // 2
            rows.append((n, linear.upstream_ciphertexts,
                         matrix.upstream_ciphertexts))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A2: cPIR upstream ciphertexts per query")
    print(f"    {'n':>6s} {'linear':>8s} {'matrix':>8s}")
    for n, linear_c, matrix_c in rows:
        print(f"    {n:>6d} {linear_c:>8d} {matrix_c:>8d}")
    assert all(m < l for _, l, m in rows[1:])


def test_a2_cpir_latency(benchmark):
    pir = LinearCPIR(list(range(32)), key_bits=128, rng=random.Random(3))
    result = benchmark.pedantic(lambda: pir.retrieve(7), rounds=1, iterations=1)
    assert result == 7


def test_a2_multiserver_cost(benchmark):
    """More servers buy a stronger collusion threshold at linear cost."""
    def run():
        rows = []
        for k in (2, 3, 5):
            pir = MultiServerXorPIR(list(range(256)), n_servers=k)
            assert pir.retrieve_int(100, 0) == 100
            rows.append((k, pir.upstream_bits, pir.downstream_bits))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("A2: k-server XOR PIR cost vs collusion threshold (n=256)")
    print(f"    {'servers':>8s} {'up bits':>8s} {'down bits':>10s} "
          f"{'tolerates':>10s}")
    for k, up, down in rows:
        print(f"    {k:>8d} {up:>8d} {down:>10d} {k - 1:>8d}-collusion")
    ups = [u for _, u, _ in rows]
    assert ups == sorted(ups)
    assert rows[0][1] == 2 * 256 and rows[2][1] == 5 * 256
