"""S3c — user privacy without respondent privacy: the COUNT/AVG attack.

Reproduces the paper's Section 3 queries verbatim over Dataset 2 through
the PIR-SQL bridge, then automates the full grid sweep, and shows that
k-anonymizing the data first (Section 6) stops the attack.
"""

import numpy as np

from repro.attacks import isolation_attack
from repro.data import dataset_2, patients
from repro.pir import PrivateAggregateIndex
from repro.sdc import Microaggregation

EDGES_DS2 = {
    "height": [150, 165, 180, 200],
    "weight": [50, 80, 105, 130],
}


def test_s3c_paper_queries_verbatim(benchmark):
    def run():
        index = PrivateAggregateIndex(
            dataset_2(), ["height", "weight"], "blood_pressure", EDGES_DS2
        )
        predicate = {"height": (0.0, 165.0), "weight": (105.0, 1000.0)}
        return index.query(predicate, rng=0)

    result = benchmark(run)
    print()
    print("S3c: the paper's two PIR queries on Dataset 2")
    print("    SELECT COUNT(*) WHERE height < 165 AND weight > 105 "
          f"-> {result.count}")
    print("    SELECT AVG(blood_pressure) WHERE ... "
          f"-> {result.average:.0f}")
    assert result.count == 1
    assert result.average == 146.0


def test_s3c_full_grid_sweep(benchmark):
    def run():
        index = PrivateAggregateIndex(
            dataset_2(), ["height", "weight"], "blood_pressure", EDGES_DS2
        )
        return isolation_attack(index, dataset_2().n_rows)

    report = benchmark(run)
    print()
    print(
        f"S3c sweep: {report.cells_probed} private COUNT/AVG probes isolate "
        f"{len(report.victims)} of {report.population} respondents "
        f"({report.disclosure_rate:.0%})"
    )
    for victim in report.victims:
        print(f"    disclosed blood pressure {victim.confidential_value:.0f} "
              f"in cell {victim.cell_ranges}")
    assert report.disclosure_rate >= 0.2


def test_s3c_kanonymization_stops_the_attack(benchmark):
    pop = patients(300, seed=4)
    edges = {
        "height": list(np.linspace(140, 210, 8)),
        "weight": list(np.linspace(30, 140, 8)),
    }

    def run():
        raw = PrivateAggregateIndex(pop, ["height", "weight"],
                                    "blood_pressure", edges)
        masked_data = Microaggregation(5).mask(pop)
        masked = PrivateAggregateIndex(masked_data, ["height", "weight"],
                                       "blood_pressure", edges)
        return (
            isolation_attack(raw, pop.n_rows),
            isolation_attack(masked, pop.n_rows),
        )

    raw_report, masked_report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("S3c -> S6: isolation victims, raw vs 5-anonymized release")
    print(f"    raw data behind PIR      : {len(raw_report.victims)} victims")
    print(f"    5-anonymous data + PIR   : {len(masked_report.victims)} victims")
    assert len(raw_report.victims) > 0
    assert len(masked_report.victims) == 0
