"""S3a — respondent privacy without user privacy: SDC of interactive
databases and the Schlörer tracker arms race.

The paper: query-set-size control is the textbook defence, the tracker
attack [22] defeats it, and the literature's answers are auditing [7]
and output perturbation [14] — all of which require the owner to see the
queries (no user privacy).
"""

from repro.data import patients
from repro.qdb import (
    GeneralTracker,
    NoisePerturbation,
    QuerySetSizeControl,
    RandomSampleQueries,
    StatisticalDatabase,
    SumAuditPolicy,
    find_general_tracker,
    identifying_predicate,
    tracker_success_rate,
)
from repro.sdc import equivalence_classes


def _setup():
    pop = patients(250, seed=3)
    unique = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
    ]
    trackable = [
        t for t in unique
        if (pop["height"] == pop["height"][t]).sum() >= 6
    ][:12]
    return pop, trackable


def test_s3a_tracker_arms_race(benchmark):
    pop, targets = _setup()
    defences = {
        "no protection": lambda: StatisticalDatabase(pop),
        "size control (k=5)": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5)]
        ),
        "size control + audit": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), SumAuditPolicy()]
        ),
        "size control + noise": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), NoisePerturbation(20.0)], seed=1
        ),
        "size control + sampling": lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), RandomSampleQueries(0.9)]
        ),
    }

    def run():
        return {
            name: tracker_success_rate(
                factory, pop, ["height", "weight"], "blood_pressure",
                targets, tolerance=2.0,
            )
            for name, factory in defences.items()
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"S3a [22]: tracker success against {len(targets)} unique targets")
    for name, rate in rates.items():
        print(f"    {name:22s} {rate * 100:5.0f}%")
    # Shape: size control alone is defeated; audit and noise stop the attack.
    assert rates["size control (k=5)"] >= 0.8
    assert rates["size control + audit"] == 0.0
    assert rates["size control + noise"] <= 0.1
    assert rates["size control + sampling"] <= 0.15


def test_s3a_general_tracker_batched_sweep(benchmark):
    """The general tracker sweeping *every* target through `ask_batch`.

    Each tracker identity consumes its queries in pairs, which ride the
    engine's batched workload API; the tracker predicate T / NOT T masks
    repeat across the whole sweep and hit the engine's predicate-mask
    cache, so the per-target cost collapses to the two fresh C OR T /
    C OR NOT T masks.
    """
    pop, targets = _setup()
    db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    predicate = find_general_tracker(pop, db, 5, ["age"])
    assert predicate is not None

    def run():
        tracker = GeneralTracker(db, predicate)
        return [
            tracker.count(
                identifying_predicate(pop, t, ["height", "weight"])
            )
            for t in targets
        ]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    hits, misses = db.mask_cache_hits, db.mask_cache_misses
    print()
    print(
        f"S3a [22]: general tracker swept {len(targets)} targets in "
        f"{db.queries_asked} queries; mask cache {hits} hits / "
        f"{misses} misses"
    )
    # Every swept target is unique on (height, weight): count == 1, through
    # legal queries only.
    assert all(c == 1.0 for c in counts)
    # The tracker-side predicates are shared across the sweep.
    assert hits >= len(targets)
