"""T1 — Table 1: the toy patient datasets and their anonymity properties.

Regenerates the paper's Table 1 and verifies every property asserted in
Section 2 (spontaneous 3-anonymity of Dataset 1; Dataset 2's unique
small-and-heavy individual with systolic pressure 146).
"""

from repro.data import dataset_1, dataset_2, format_table_1
from repro.sdc import anonymity_level, class_size_histogram, uniqueness_rate


def test_table1_reproduction(benchmark):
    def build():
        ds1, ds2 = dataset_1(), dataset_2()
        return (
            ds1,
            ds2,
            anonymity_level(ds1, ["height", "weight"]),
            anonymity_level(ds2, ["height", "weight"]),
        )

    ds1, ds2, k1, k2 = benchmark(build)

    print()
    print("=" * 70)
    print("T1: Table 1 reproduction")
    print("=" * 70)
    print(format_table_1())
    print()
    print(f"Dataset 1: k-anonymity level = {k1} (paper: spontaneously 3)")
    print(f"Dataset 2: k-anonymity level = {k2} (paper: not 3-anonymous)")
    print(f"Dataset 1 class sizes: {class_size_histogram(ds1)}")
    print(f"Dataset 2 class sizes: {class_size_histogram(ds2)}")
    print(f"Dataset 2 sample-unique rate: "
          f"{uniqueness_rate(ds2, ['height', 'weight']):.0%}")

    assert k1 == 3
    assert k2 == 1
    mask = (ds2["height"] < 165) & (ds2["weight"] > 105)
    assert mask.sum() == 1
    assert float(ds2["blood_pressure"][mask][0]) == 146.0
